// Package models defines the CPU-scale model zoo used by the FedCross
// reproduction. Each model mirrors one of the paper's architectures:
//
//	CNN        — the FedAvg 2-conv/2-fc CNN
//	ResNetMini — stands in for ResNet-20 (conv stem + residual blocks)
//	VGGMini    — stands in for VGG-16 (deepest plain conv stack, largest
//	             parameter count in the zoo, so it shows the paper's
//	             "big model is slow early" effect)
//	MLP        — a small fully connected baseline for fast tests
//	CharLSTM   — stands in for the Shakespeare next-character LSTM
//	SentLSTM   — stands in for the Sent140 sentiment LSTM
//
// All vision models consume flattened 3×8×8 images (the synthetic
// substitute for 3×32×32 CIFAR); see DESIGN.md §2 for the substitution
// rationale. Factories are deterministic in the supplied RNG, which is how
// FL clients reconstruct identical architectures before loading parameter
// vectors.
package models

import (
	"fmt"
	"sort"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// Vision input geometry shared by all image models.
const (
	VisionC = 3
	VisionH = 8
	VisionW = 8
	// VisionFeatures is the flattened input width of vision models.
	VisionFeatures = VisionC * VisionH * VisionW
)

// Factory constructs fresh, randomly initialised network instances.
type Factory struct {
	// Name identifies the architecture in configs and reports, and keys
	// the process-wide replica pool (Replicas) — it must therefore encode
	// every architectural dimension, as the stock factories do.
	Name string
	// New builds a fresh instance; equal RNG seeds give equal weights.
	New func(rng *tensor.RNG) *nn.Sequential
}

// CNN mirrors the paper's FedAvg CNN: two conv+pool stages and two fully
// connected layers.
func CNN(classes int) Factory {
	return Factory{
		Name: fmt.Sprintf("cnn-%d", classes),
		New: func(rng *tensor.RNG) *nn.Sequential {
			g1 := tensor.ConvGeom{InC: VisionC, InH: VisionH, InW: VisionW, KH: 3, KW: 3, Stride: 1, Pad: 1}
			c1 := nn.NewConv2D(g1, 8, rng)
			p1 := nn.NewMaxPool2D(8, VisionH, VisionW, 2)
			g2 := tensor.ConvGeom{InC: 8, InH: VisionH / 2, InW: VisionW / 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
			c2 := nn.NewConv2D(g2, 16, rng)
			p2 := nn.NewMaxPool2D(16, VisionH/2, VisionW/2, 2)
			return nn.NewSequential(
				c1, nn.NewReLU(), p1,
				c2, nn.NewReLU(), p2,
				nn.NewLinear(16*(VisionH/4)*(VisionW/4), 32, rng), nn.NewReLU(),
				nn.NewLinear(32, classes, rng),
			)
		},
	}
}

// ResNetMini stands in for ResNet-20: a conv stem, two residual blocks and
// a global-average-pool head.
func ResNetMini(classes int) Factory {
	return Factory{
		Name: fmt.Sprintf("resnet-mini-%d", classes),
		New: func(rng *tensor.RNG) *nn.Sequential {
			const ch = 12
			stem := nn.NewConv2D(tensor.ConvGeom{InC: VisionC, InH: VisionH, InW: VisionW, KH: 3, KW: 3, Stride: 1, Pad: 1}, ch, rng)
			block := func(h, w int) nn.Layer {
				g := tensor.ConvGeom{InC: ch, InH: h, InW: w, KH: 3, KW: 3, Stride: 1, Pad: 1}
				body := nn.NewSequential(
					nn.NewConv2D(g, ch, rng), nn.NewReLU(),
					nn.NewConv2D(g, ch, rng),
				)
				return nn.NewResidual(body)
			}
			return nn.NewSequential(
				stem, nn.NewReLU(),
				block(VisionH, VisionW), nn.NewReLU(),
				nn.NewMaxPool2D(ch, VisionH, VisionW, 2),
				block(VisionH/2, VisionW/2), nn.NewReLU(),
				nn.NewGlobalAvgPool(ch, VisionH/2, VisionW/2),
				nn.NewLinear(ch, classes, rng),
			)
		},
	}
}

// VGGMini stands in for VGG-16: the deepest plain conv stack in the zoo and
// the largest parameter count, preserving the paper's observation that
// connection-intensive models start slower.
func VGGMini(classes int) Factory {
	return Factory{
		Name: fmt.Sprintf("vgg-mini-%d", classes),
		New: func(rng *tensor.RNG) *nn.Sequential {
			conv := func(inC, outC, h, w int) *nn.Conv2D {
				return nn.NewConv2D(tensor.ConvGeom{InC: inC, InH: h, InW: w, KH: 3, KW: 3, Stride: 1, Pad: 1}, outC, rng)
			}
			return nn.NewSequential(
				conv(VisionC, 16, VisionH, VisionW), nn.NewReLU(),
				conv(16, 16, VisionH, VisionW), nn.NewReLU(),
				nn.NewMaxPool2D(16, VisionH, VisionW, 2),
				conv(16, 32, VisionH/2, VisionW/2), nn.NewReLU(),
				conv(32, 32, VisionH/2, VisionW/2), nn.NewReLU(),
				nn.NewMaxPool2D(32, VisionH/2, VisionW/2, 2),
				nn.NewLinear(32*(VisionH/4)*(VisionW/4), 64, rng), nn.NewReLU(),
				nn.NewLinear(64, classes, rng),
			)
		},
	}
}

// MLP is a small two-layer perceptron over arbitrary flat features, used
// by fast tests and the theory experiments.
func MLP(in, hidden, classes int) Factory {
	return Factory{
		Name: fmt.Sprintf("mlp-%d-%d-%d", in, hidden, classes),
		New: func(rng *tensor.RNG) *nn.Sequential {
			return nn.NewSequential(
				nn.NewLinear(in, hidden, rng), nn.NewReLU(),
				nn.NewLinear(hidden, classes, rng),
			)
		},
	}
}

// CharLSTM stands in for the Shakespeare model: embedding, LSTM, and a
// next-character softmax head over the vocabulary.
func CharLSTM(vocab, seqLen, embed, hidden int) Factory {
	return Factory{
		Name: fmt.Sprintf("char-lstm-v%d-t%d-e%d-h%d", vocab, seqLen, embed, hidden),
		New: func(rng *tensor.RNG) *nn.Sequential {
			return nn.NewSequential(
				nn.NewEmbedding(vocab, embed, rng),
				nn.NewLSTM(seqLen, embed, hidden, rng),
				nn.NewLinear(hidden, vocab, rng),
			)
		},
	}
}

// SentLSTM stands in for the Sent140 model: embedding, LSTM, and a binary
// sentiment head.
func SentLSTM(vocab, seqLen, embed, hidden int) Factory {
	return Factory{
		Name: fmt.Sprintf("sent-lstm-v%d-t%d-e%d-h%d", vocab, seqLen, embed, hidden),
		New: func(rng *tensor.RNG) *nn.Sequential {
			return nn.NewSequential(
				nn.NewEmbedding(vocab, embed, rng),
				nn.NewLSTM(seqLen, embed, hidden, rng),
				nn.NewLinear(hidden, 2, rng),
			)
		},
	}
}

// Registry returns the named stock factories for the CLI tools, keyed by
// a short architecture name.
func Registry(classes int) map[string]Factory {
	return map[string]Factory{
		"cnn":    CNN(classes),
		"resnet": ResNetMini(classes),
		"vgg":    VGGMini(classes),
		"mlp":    MLP(VisionFeatures, 32, classes),
	}
}

// Names returns the sorted registry keys.
func Names() []string {
	ks := make([]string, 0, 4)
	for k := range Registry(10) {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
