package models

import (
	"testing"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

func TestVisionModelShapes(t *testing.T) {
	for _, f := range []Factory{CNN(10), ResNetMini(10), VGGMini(10)} {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			rng := tensor.NewRNG(1)
			net := f.New(rng)
			x := rng.Randn(1, 4, VisionFeatures)
			y := net.Forward(x, false)
			if y.Shape[0] != 4 || y.Shape[1] != 10 {
				t.Fatalf("output shape %v, want [4 10]", y.Shape)
			}
			if y.HasNaN() {
				t.Fatal("forward produced NaN")
			}
		})
	}
}

func TestVGGIsLargest(t *testing.T) {
	rng := tensor.NewRNG(2)
	cnn := CNN(10).New(rng).NumParams()
	res := ResNetMini(10).New(rng).NumParams()
	vgg := VGGMini(10).New(rng).NumParams()
	if vgg <= cnn || vgg <= res {
		t.Fatalf("VGGMini must be largest: cnn=%d resnet=%d vgg=%d", cnn, res, vgg)
	}
}

func TestFactoriesDeterministic(t *testing.T) {
	for _, f := range []Factory{CNN(10), ResNetMini(10), VGGMini(10), MLP(8, 4, 3)} {
		a := nn.FlattenParams(f.New(tensor.NewRNG(42)).Params())
		b := nn.FlattenParams(f.New(tensor.NewRNG(42)).Params())
		if len(a) != len(b) {
			t.Fatalf("%s: param counts differ", f.Name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed must give same weights", f.Name)
			}
		}
	}
}

func TestParamVectorRoundTripThroughFreshInstance(t *testing.T) {
	// The FL pattern: flatten a trained model, rebuild the architecture
	// fresh, load the vector, get identical outputs.
	f := ResNetMini(10)
	rng := tensor.NewRNG(3)
	m1 := f.New(rng)
	vec := nn.FlattenParams(m1.Params())
	m2 := f.New(tensor.NewRNG(999)) // different init
	if err := nn.LoadParams(m2.Params(), vec); err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRNG(4).Randn(1, 2, VisionFeatures)
	y1 := m1.Forward(x, false)
	y2 := m2.Forward(x, false)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("loaded model output differs from source")
		}
	}
}

func TestTextModels(t *testing.T) {
	rng := tensor.NewRNG(5)
	char := CharLSTM(20, 6, 4, 8).New(rng)
	x := tensor.New([]float64{1, 2, 3, 4, 5, 6, 0, 19, 7, 3, 2, 1}, 2, 6)
	y := char.Forward(x, false)
	if y.Shape[1] != 20 {
		t.Fatalf("char-lstm output %v, want vocab 20", y.Shape)
	}
	sent := SentLSTM(30, 5, 4, 8).New(rng)
	xs := tensor.New([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 2, 5)
	ys := sent.Forward(xs, false)
	if ys.Shape[1] != 2 {
		t.Fatalf("sent-lstm output %v, want 2 classes", ys.Shape)
	}
}

func TestRegistryAndNames(t *testing.T) {
	reg := Registry(10)
	for _, name := range Names() {
		f, ok := reg[name]
		if !ok {
			t.Fatalf("Names lists %q but Registry lacks it", name)
		}
		if f.New == nil {
			t.Fatalf("factory %q has nil constructor", name)
		}
	}
	if len(Names()) < 4 {
		t.Fatalf("expected at least 4 registered models, got %d", len(Names()))
	}
}

func TestVisionModelsTrainable(t *testing.T) {
	// One SGD step must change parameters and not blow up.
	for _, f := range []Factory{CNN(10), ResNetMini(10)} {
		rng := tensor.NewRNG(6)
		net := f.New(rng)
		before := nn.FlattenParams(net.Params()).Clone()
		x := rng.Randn(1, 8, VisionFeatures)
		labels := make([]int, 8)
		for i := range labels {
			labels[i] = i % 10
		}
		opt := nn.NewSGD(0.01, 0.5)
		net.ZeroGrads()
		logits := net.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy(logits, labels)
		net.Backward(grad)
		opt.Step(net.Params(), net.Grads())
		after := nn.FlattenParams(net.Params())
		if before.DistanceSq(after) == 0 {
			t.Fatalf("%s: SGD step did not move parameters", f.Name)
		}
		for _, v := range after {
			if v != v { // NaN check
				t.Fatalf("%s: NaN after SGD step", f.Name)
			}
		}
	}
}
