package models

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// BatchedReplica is a fused G-client network with its optimizer, leased
// from a BatchedReplicaPool. Like Replica, a leased instance carries no
// usable state: callers must LoadClient every group's weights and Reset
// the optimizer before training.
type BatchedReplica struct {
	// Net is the reusable fused network instance.
	Net *nn.BatchedNet
	// Opt is the instance-bound SGD state over the parameter slabs.
	Opt *nn.SGD
}

// Reset configures the optimizer for a new fused training job and zeroes
// its momentum slabs in place.
func (r *BatchedReplica) Reset(lr, momentum float64) {
	r.Opt.LR = lr
	r.Opt.Momentum = momentum
	r.Opt.WeightDecay = 0
	r.Opt.ZeroVelocity()
}

// BatchedReplicaPool recycles fused replicas of one (architecture,
// fanout) pair. Concurrency-safe; leased replicas are not.
type BatchedReplicaPool struct {
	factory Factory
	fanout  int
	pool    sync.Pool
	// err caches the architecture's batched-construction failure: an
	// architecture either always mirrors or never does, so the first
	// probe's verdict is final.
	err         error
	errOnce     sync.Once
	outstanding atomic.Int64
}

// NewBatchedReplicaPool returns an empty pool for the factory's
// architecture at the given fanout.
func NewBatchedReplicaPool(f Factory, fanout int) *BatchedReplicaPool {
	return &BatchedReplicaPool{factory: f, fanout: fanout}
}

// Get leases a fused replica, constructing one when none is idle. It
// returns an error when the architecture has no batched mirror (e.g. it
// contains Dropout); callers then fall back to solo training. Parameter
// slabs are unspecified on lease — callers must LoadClient every group.
func (p *BatchedReplicaPool) Get() (*BatchedReplica, error) {
	p.errOnce.Do(func() {
		proto := p.factory.New(tensor.NewRNG(0))
		if _, err := nn.NewBatched(proto, p.fanout); err != nil {
			p.err = fmt.Errorf("models: %s: %w", p.factory.Name, err)
		}
	})
	if p.err != nil {
		return nil, p.err
	}
	p.outstanding.Add(1)
	if r, ok := p.pool.Get().(*BatchedReplica); ok {
		return r, nil
	}
	proto := p.factory.New(tensor.NewRNG(0))
	net, err := nn.NewBatched(proto, p.fanout)
	if err != nil {
		// Unreachable after the probe above, but keep the lease honest.
		p.outstanding.Add(-1)
		return nil, fmt.Errorf("models: %s: %w", p.factory.Name, err)
	}
	return &BatchedReplica{Net: net, Opt: nn.NewSGD(1, 0)}, nil
}

// Put returns a leased fused replica to the pool.
func (p *BatchedReplicaPool) Put(r *BatchedReplica) {
	if r != nil {
		p.outstanding.Add(-1)
		p.pool.Put(r)
	}
}

// Outstanding reports how many leased fused replicas have not been
// returned.
func (p *BatchedReplicaPool) Outstanding() int64 { return p.outstanding.Load() }

// batchedPools maps "Name#fanout" to its process-wide pool.
var batchedPools sync.Map

// BatchedReplicas returns the shared fused-replica pool for the
// factory's architecture at the given fanout, keyed by Factory.Name and
// the fanout together.
func BatchedReplicas(f Factory, fanout int) *BatchedReplicaPool {
	key := fmt.Sprintf("%s#%d", f.Name, fanout)
	if p, ok := batchedPools.Load(key); ok {
		return p.(*BatchedReplicaPool)
	}
	p, _ := batchedPools.LoadOrStore(key, NewBatchedReplicaPool(f, fanout))
	return p.(*BatchedReplicaPool)
}
