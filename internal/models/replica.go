package models

import (
	"sync"
	"sync/atomic"

	"fedcross/internal/nn"
	"fedcross/internal/tensor"
)

// Replica is a long-lived network instance with its optimizer, leased
// from a ReplicaPool and reused across training and evaluation jobs.
// Construction is the expensive part of a client job — every layer
// allocates weight, gradient and activation tensors — so the round engine
// recycles whole instances instead of calling Factory.New per job.
//
// A leased replica carries no usable state: its weights are whatever the
// previous job left behind and must be overwritten with nn.LoadParams,
// and Reset must run before training so the optimizer starts cold. After
// both, the replica is indistinguishable from a freshly constructed
// network (layer activation buffers are shape-refreshed by every forward
// pass, so their stale contents never leak). The equivalence is pinned by
// TestTrainLocalReplicaReuse.
type Replica struct {
	// Net is the reusable network instance.
	Net *nn.Sequential
	// Opt is the instance-bound SGD state (velocity buffers are keyed by
	// parameter position, so the optimizer stays with its network).
	Opt *nn.SGD
}

// Reset configures the optimizer for a new training job and zeroes its
// momentum in place, completing the lease-time reset together with the
// caller's nn.LoadParams.
func (r *Replica) Reset(lr, momentum float64) {
	r.Opt.LR = lr
	r.Opt.Momentum = momentum
	r.Opt.WeightDecay = 0
	r.Opt.ZeroVelocity()
}

// ReplicaPool recycles replicas of one architecture. It is
// concurrency-safe; the replicas it lends are not — each leased replica
// belongs to exactly one goroutine between Get and Put.
type ReplicaPool struct {
	factory Factory
	pool    sync.Pool
	// outstanding counts replicas currently leased (Get minus non-nil
	// Put). It exists for leak detection: every engine code path —
	// including error exits — must return what it leased, and the tests
	// assert Outstanding() == 0 after induced failures.
	outstanding atomic.Int64
}

// NewReplicaPool returns an empty pool for the factory's architecture.
func NewReplicaPool(f Factory) *ReplicaPool {
	return &ReplicaPool{factory: f}
}

// Get leases a replica: a recycled instance when one is idle, a freshly
// constructed one otherwise. The weights are unspecified either way —
// callers must nn.LoadParams before use. Construction uses a throwaway
// RNG for exactly that reason: no caller-visible randomness is consumed,
// so a pool hit and a pool miss are indistinguishable.
func (p *ReplicaPool) Get() *Replica {
	p.outstanding.Add(1)
	if r, ok := p.pool.Get().(*Replica); ok {
		return r
	}
	net := p.factory.New(tensor.NewRNG(0))
	// The placeholder learning rate is overwritten by Reset before any
	// Step; NewSGD only rejects non-positive rates at construction.
	return &Replica{Net: net, Opt: nn.NewSGD(1, 0)}
}

// Put returns a leased replica to the pool. The caller must not touch the
// replica afterwards.
func (p *ReplicaPool) Put(r *Replica) {
	if r != nil {
		p.outstanding.Add(-1)
		p.pool.Put(r)
	}
}

// Outstanding reports how many leased replicas have not been returned.
// Zero between rounds is the leak-freedom invariant the fl tests pin.
func (p *ReplicaPool) Outstanding() int64 { return p.outstanding.Load() }

// replicaPools maps Factory.Name to its process-wide ReplicaPool.
var replicaPools sync.Map

// Replicas returns the shared replica pool for the factory's
// architecture. Pools are keyed by Factory.Name, so a name must uniquely
// identify the full architecture — every stock factory encodes all of its
// dimensions in its name. (A colliding name with a different parameter
// count fails at nn.LoadParams; same-count collisions are the caller's
// bug.)
func Replicas(f Factory) *ReplicaPool {
	if p, ok := replicaPools.Load(f.Name); ok {
		return p.(*ReplicaPool)
	}
	p, _ := replicaPools.LoadOrStore(f.Name, NewReplicaPool(f))
	return p.(*ReplicaPool)
}
