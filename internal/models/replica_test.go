package models

import (
	"testing"

	"fedcross/internal/tensor"
)

func TestReplicasPoolPerArchitecture(t *testing.T) {
	a := Replicas(MLP(4, 3, 2))
	if b := Replicas(MLP(4, 3, 2)); a != b {
		t.Fatal("equal-named factories must share a pool")
	}
	if c := Replicas(MLP(5, 3, 2)); a == c {
		t.Fatal("different architectures must get distinct pools")
	}
	r := a.Get()
	if want := MLP(4, 3, 2).New(tensor.NewRNG(0)).NumParams(); r.Net.NumParams() != want {
		t.Fatalf("leased replica has %d params, want %d", r.Net.NumParams(), want)
	}
	if r.Opt == nil {
		t.Fatal("replica must carry its optimizer")
	}
	r.Reset(0.05, 0.9)
	if r.Opt.LR != 0.05 || r.Opt.Momentum != 0.9 || r.Opt.WeightDecay != 0 {
		t.Fatalf("Reset left optimizer at %+v", r.Opt)
	}
	a.Put(r)
	a.Put(nil) // tolerated, so eval teardown can blanket-Put
}

// TestFactoryNamesEncodeDims guards the replica-pool key invariant: two
// factories that build different architectures must never share a name.
func TestFactoryNamesEncodeDims(t *testing.T) {
	if CharLSTM(20, 6, 4, 8).Name == CharLSTM(20, 6, 4, 16).Name {
		t.Fatal("CharLSTM name must encode the hidden width")
	}
	if CharLSTM(20, 6, 4, 8).Name == CharLSTM(20, 6, 8, 8).Name {
		t.Fatal("CharLSTM name must encode the embedding width")
	}
	if SentLSTM(30, 5, 4, 8).Name == SentLSTM(30, 5, 8, 8).Name {
		t.Fatal("SentLSTM name must encode the embedding width")
	}
}
