// Command fedsim runs the FedCross reproduction experiments: every table
// and figure of the paper's evaluation, at a selectable scale.
//
// Usage:
//
//	fedsim -experiment table1                 # communication analysis
//	fedsim -experiment table2 -profile tiny   # accuracy grid slice
//	fedsim -experiment fig5 -profile small -models cnn,resnet
//	fedsim -experiment all -profile tiny
//	fedsim -experiment table2 -parallel 1     # force serial rounds (same results)
//	fedsim -experiment table2 -jobs 1         # force sequential grid cells (same results)
//	fedsim -experiment comm -codecs identity,int8,topk
//	fedsim -experiment table2 -codec fp16 -net lte -deadline 30
//	fedsim -experiment robust -attack signflip -fracs 0,0.2 -reducers mean,krum
//	fedsim -experiment async -buffers 1,4,8 -staleexp 0.5
//	fedsim -experiment table2 -reducer krum -attack scale -attackfrac 0.1
//	fedsim -experiment fig7 -clients 1000000 -rsslimitmb 2048
//	fedsim -experiment faults -faultlevels 0,0.05,0.1 -quorum 2 -retries 2
//	fedsim -experiment churn -clients 100000 -avails 1,0.7,0.4
//	fedsim -experiment resume                  # crash/resume equality gate
//	fedsim -experiment table2 -faults crash=0.1,drop=0.1 -quorum 2
//	fedsim -experiment table2 -checkpoint run.ckpt -stopafter 4   # kill …
//	fedsim -experiment table2 -checkpoint run.ckpt -resume        # … resume
//
// Profiles: tiny (seconds), small (minutes), paper (the scaled
// paper-shaped setup; hours for the full grid). Every experiment grid
// runs its (dataset, model, heterogeneity, algorithm, seed) cells
// concurrently through the experiment scheduler: -jobs caps how many
// cells are in flight, client-local training inside each cell fans out
// under -parallel, and both levels lease goroutines from one global
// worker budget so no combination oversubscribes the machine. Neither
// flag changes any result (randomness is pre-split per client, and cells
// are independent).
//
// The simulated wire: -codec compresses every model payload (identity,
// fp16, int8, topk[:frac]), -net draws per-client bandwidth/latency from
// a link model (none, fiber, wifi, lte, edge), and -deadline turns
// clients whose upload exceeds the round budget (seconds) into
// stragglers. All three apply to every experiment; the comm experiment
// additionally sweeps -codecs on identical runs and reports accuracy
// against measured megabytes on the wire.
//
// Robustness: -reducer swaps the server-side aggregation rule (mean,
// median, trimmed[:frac], krum[:f], multikrum[:f[:m]]) and -attack
// compromises an -attackfrac fraction of the client population
// (labelflip, signflip, scale, collude; -attackscale amplifies the
// scaled attacks). Both apply to any experiment; the robust experiment
// sweeps -reducers × -fracs on identical environments and reports each
// rule's retention of its own benign accuracy. The async experiment
// runs the buffered-async (FedBuff-style) engine over -buffers ×
// -inflights, with -staleexp damping stale arrivals; -buffer and
// -inflight pin a single cell. Attacked and async runs keep the same
// fixed-seed determinism as everything else.
//
// Fault tolerance: -faults injects deterministic client crashes, payload
// drops/truncation/corruption/duplication, stragglers and server stalls
// (key=value spec, pure functions of the seed — rate 0 is bit-identical
// to a fault-free run), -retries/-retrybackoff give uploads deadline-aware
// retry attempts, and -quorum lets a round degrade (keep the current
// model) instead of aggregating below the floor. -churn drives diurnal
// availability traces and a population ramp. -checkpoint writes
// write-ahead round snapshots (-checkpointevery n rounds, -stopafter
// simulates a kill at a round boundary) and -resume continues a killed
// run to a byte-identical final history. The faults/churn experiments
// sweep -faultlevels/-avails on identical runs; the resume experiment is
// a pass/fail equality gate over every algorithm (not part of "all").
//
// Scale: -clients overrides the client population N (the fig7 sweep
// then runs that single N), -k overrides the activated clients per
// round. Populations at or above the lazy cutoff synthesize shards on
// demand from the partition seed, so N=10^6 holds only the LRU working
// set resident; -rsslimitmb makes the run fail if peak RSS (VmHWM)
// exceeds the ceiling — the memory-boundedness gate CI relies on.
// -stripes and -cachecap tune the lazy shard cache's lock geometry and
// resident capacity, and -prefetch hands that many future rounds of
// planned cohorts to a background pool that synthesizes their shards
// while the current round trains. All three are wall-clock/memory knobs
// only: histories are bit-identical at every setting.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"fedcross/internal/core"
	"fedcross/internal/data"
	"fedcross/internal/experiments"
	"fedcross/internal/fl"
)

func main() {
	var (
		experiment  = flag.String("experiment", "table1", "experiment to run: table1, table2, table3, fig3, fig4, fig5, fig6, fig7, fig8, fig9, comm, robust, async, ablations, faults, churn, resume, all")
		profile     = flag.String("profile", "tiny", "run scale: tiny, small, paper")
		modelsFlag  = flag.String("models", "cnn", "comma-separated vision models (cnn,resnet,vgg,mlp)")
		datasets    = flag.String("datasets", "vision10", "comma-separated datasets for table2")
		betas       = flag.String("betas", "0.5", "comma-separated Dirichlet betas (non-IID settings)")
		iid         = flag.Bool("iid", true, "include the IID setting where applicable")
		alphas      = flag.String("alphas", "0.5,0.8,0.9,0.95,0.99,0.999", "comma-separated alphas for table3/fig8")
		rounds      = flag.Int("rounds", 0, "override the profile's round count (0 keeps profile default)")
		clients     = flag.Int("clients", 0, "override the profile's client population N (0 keeps profile default); fig7 sweeps exactly this N")
		kFlag       = flag.Int("k", 0, "override the profile's activated clients per round K (0 keeps profile default)")
		rssLimitMB  = flag.Int("rsslimitmb", 0, "fail if peak RSS exceeds this many MiB (0 = no gate)")
		seeds       = flag.Int("seeds", 0, "override the number of seeds (0 keeps profile default)")
		parallel    = flag.Int("parallel", 0, "worker goroutines for client training/eval (0 = all cores, 1 = serial; results are identical)")
		batchfanout = flag.Int("batchfanout", 1, "max same-shape client jobs fused into one batched training pass (<=1 = solo; results are identical)")
		jobs        = flag.Int("jobs", 0, "concurrent experiment grid cells (0 = all cores, 1 = sequential; results are identical)")
		codec       = flag.String("codec", "identity", "wire codec for model payloads: identity, fp16, int8, topk[:frac]")
		network     = flag.String("net", "none", "simulated link model: none, fiber, wifi, lte, edge")
		deadline    = flag.Float64("deadline", 0, "per-round client deadline in seconds (0 = none); late uploads become stragglers")
		codecs      = flag.String("codecs", "identity,fp16,int8,topk", "comma-separated codec sweep for the comm experiment")

		reducer     = flag.String("reducer", "", "server-side aggregation rule: mean, trimmed[:frac], median, krum[:f], multikrum[:f]:[m] (empty = classic weighted mean)")
		attack      = flag.String("attack", "none", "Byzantine client behaviour: none, labelflip, signflip, scale, collude")
		attackFrac  = flag.Float64("attackfrac", 0, "fraction of the client population compromised, in [0,1)")
		attackScale = flag.Float64("attackscale", 0, "magnitude of the scale/collude attacks (0 = default 10)")
		reducers    = flag.String("reducers", "mean,trimmed,median,krum,multikrum", "comma-separated reducer sweep for the robust experiment")
		fracs       = flag.String("fracs", "0,0.2", "comma-separated attacker fractions for the robust experiment")
		buffers     = flag.String("buffers", "1,4,8", "comma-separated commit buffer sizes for the async experiment")
		inflights   = flag.String("inflights", "", "comma-separated in-flight client counts for the async experiment (empty = K,2K)")
		buffer      = flag.Int("buffer", 0, "async commit buffer size B outside the sweep (0 = default 4)")
		inflight    = flag.Int("inflight", 0, "async concurrent clients M outside the sweep (0 = clients per round)")
		staleExp    = flag.Float64("staleexp", 0, "async staleness-weight exponent p in 1/(1+s)^p (0 = default 0.5)")
		algosFlag    = flag.String("algos", "", "comma-separated algorithm subset for table2 and the resume experiment (empty = all six); restricting to one algorithm makes -checkpoint/-resume single-cell")
		faultsSpec   = flag.String("faults", "", "fault-injection spec, e.g. crash=0.1,drop=0.05,truncate=0.01,corrupt=0.01,dup=0.02,straggle=0.1,stragglefactor=4,stall=0.05,stallsec=1 (empty = fault-free)")
		faultLevels  = flag.String("faultlevels", "", "comma-separated fault intensities for the faults experiment (empty = 0,0.05,0.1)")
		quorum       = flag.Int("quorum", 0, "minimum accepted uploads per round; below it the round degrades (keeps the current model) instead of aggregating (0 = no quorum)")
		retries      = flag.Int("retries", 0, "upload retry attempts after a wire fault (0 = none)")
		retryBackoff = flag.Float64("retrybackoff", 0, "simulated seconds added per upload retry attempt")
		churnSpec    = flag.String("churn", "", "availability-churn spec, e.g. avail=0.7,period=24,jitter=0.3,start=1,end=0.5 (empty = static fleet)")
		avails       = flag.String("avails", "", "comma-separated mean availabilities for the churn experiment (empty = 1,0.7,0.4)")
		checkpoint   = flag.String("checkpoint", "", "round-snapshot file for crash-safe runs (empty = no checkpointing)")
		ckptEvery    = flag.Int("checkpointevery", 0, "write a snapshot every n completed rounds (0 = only at -stopafter)")
		resumeFlag   = flag.Bool("resume", false, "resume from the -checkpoint snapshot instead of starting at round 0")
		stopAfter    = flag.Int("stopafter", 0, "halt after this round completes, writing a snapshot (simulated kill; 0 = run to completion)")
		stopsFlag    = flag.String("stops", "", "comma-separated kill rounds for the resume experiment (empty = 1, mid, last-1)")
		prefetchR   = flag.Int("prefetch", 0, "rounds of cohort lookahead handed to the lazy source's background prefetch pool (0 = off; results are identical)")
		stripes     = flag.Int("stripes", 0, "lazy shard-cache stripe count (0 = auto: clamp(NumCPU,8,64); results are identical)")
		cacheCap    = flag.Int("cachecap", 0, "lazy shard-cache resident capacity (0 = auto: clamp(4K,64,4096))")
	)
	flag.Parse()

	prof, err := profileByName(*profile)
	if err != nil {
		fatal(err)
	}
	if *rounds < 0 {
		fatal(fmt.Errorf("-rounds %d must be non-negative", *rounds))
	}
	if *rounds > 0 {
		prof.Rounds = *rounds
	}
	if *clients < 0 {
		fatal(fmt.Errorf("-clients %d must be non-negative", *clients))
	}
	if *kFlag < 0 {
		fatal(fmt.Errorf("-k %d must be non-negative", *kFlag))
	}
	if *clients > 0 {
		prof.NumClients = *clients
		if prof.ClientsPerRound > prof.NumClients {
			prof.ClientsPerRound = prof.NumClients
		}
	}
	if *kFlag > 0 {
		if *kFlag > prof.NumClients {
			fatal(fmt.Errorf("-k %d exceeds the client population N=%d (raise -clients or lower -k)", *kFlag, prof.NumClients))
		}
		prof.ClientsPerRound = *kFlag
	}
	if *prefetchR < 0 {
		fatal(fmt.Errorf("-prefetch %d must be non-negative", *prefetchR))
	}
	prof.PrefetchRounds = *prefetchR
	if *stripes < 0 {
		fatal(fmt.Errorf("-stripes %d must be non-negative", *stripes))
	}
	prof.CacheStripes = *stripes
	if *cacheCap < 0 {
		fatal(fmt.Errorf("-cachecap %d must be non-negative", *cacheCap))
	}
	prof.CacheCap = *cacheCap
	if *rssLimitMB < 0 {
		fatal(fmt.Errorf("-rsslimitmb %d must be non-negative", *rssLimitMB))
	}
	if *parallel < 0 {
		fatal(fmt.Errorf("-parallel %d must be non-negative", *parallel))
	}
	prof.Parallelism = *parallel
	if *batchfanout < 0 {
		fatal(fmt.Errorf("-batchfanout %d must be non-negative", *batchfanout))
	}
	prof.BatchFanout = *batchfanout
	if *jobs < 0 {
		fatal(fmt.Errorf("-jobs %d must be non-negative", *jobs))
	}
	prof.Jobs = *jobs
	prof.Codec = *codec
	prof.Network = *network
	if *deadline < 0 {
		fatal(fmt.Errorf("-deadline %v must be non-negative", *deadline))
	}
	prof.DeadlineSec = *deadline
	if err := (fl.TransportOptions{Codec: prof.Codec, Network: prof.Network, DeadlineSec: prof.DeadlineSec}).Validate(); err != nil {
		fatal(err)
	}
	if err := experiments.ValidateReducer(*reducer); err != nil {
		fatal(err)
	}
	prof.Reducer = *reducer
	prof.Attack = *attack
	prof.AttackFrac = *attackFrac
	prof.AttackScale = *attackScale
	if err := (fl.AdversaryOptions{Attack: prof.Attack, Frac: prof.AttackFrac, Scale: prof.AttackScale}).Validate(); err != nil {
		fatal(err)
	}
	algoList := splitList(*algosFlag)
	for _, a := range algoList {
		if _, err := experiments.NewAlgorithm(a); err != nil {
			fatal(fmt.Errorf("-algos: %w", err))
		}
	}
	faultOpts, err := parseFaultSpec(*faultsSpec)
	if err != nil {
		fatal(err)
	}
	if err := faultOpts.Validate(); err != nil {
		fatal(err)
	}
	prof.Faults = faultOpts
	if *quorum < 0 {
		fatal(fmt.Errorf("-quorum %d must be non-negative", *quorum))
	}
	if *quorum > prof.ClientsPerRound {
		fatal(fmt.Errorf("-quorum %d exceeds the %d activated clients per round (no round could ever meet it)", *quorum, prof.ClientsPerRound))
	}
	prof.MinUploads = *quorum
	if *retries < 0 {
		fatal(fmt.Errorf("-retries %d must be non-negative", *retries))
	}
	prof.Retries = *retries
	if *retryBackoff < 0 {
		fatal(fmt.Errorf("-retrybackoff %v must be non-negative", *retryBackoff))
	}
	prof.RetryBackoffSec = *retryBackoff
	churnOpts, err := parseChurnSpec(*churnSpec)
	if err != nil {
		fatal(err)
	}
	if err := churnOpts.Validate(); err != nil {
		fatal(err)
	}
	prof.Churn = churnOpts
	prof.Checkpoint = fl.CheckpointOptions{
		Path:           *checkpoint,
		Every:          *ckptEvery,
		Resume:         *resumeFlag,
		StopAfterRound: *stopAfter,
	}
	if err := prof.Checkpoint.Validate(); err != nil {
		fatal(err)
	}
	if *seeds < 0 {
		fatal(fmt.Errorf("-seeds %d must be non-negative", *seeds))
	}
	if *seeds > 0 {
		prof.Seeds = prof.Seeds[:0]
		for s := 1; s <= *seeds; s++ {
			prof.Seeds = append(prof.Seeds, int64(s))
		}
	}

	modelList := listOr(splitList(*modelsFlag), "cnn")
	datasetList := listOr(splitList(*datasets), "vision10")
	hetList, err := parseHets(*betas, *iid)
	if err != nil {
		fatal(err)
	}
	alphaList, err := parseFloats(*alphas)
	if err != nil {
		fatal(err)
	}
	if len(alphaList) == 0 {
		fatal(fmt.Errorf("-alphas must name at least one value"))
	}

	run := func(name string) error {
		fmt.Printf("=== %s (profile %s) ===\n", name, prof.Name)
		switch name {
		case "table1":
			res, err := experiments.RunTableI(prof.ClientsPerRound)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "table2":
			res, err := experiments.RunTableII(experiments.TableIIOptions{
				Profile: prof, Models: modelList, Datasets: datasetList, Hets: hetList,
				Algorithms: algoList,
			})
			if err != nil {
				return err
			}
			if err := res.Render(os.Stdout); err != nil {
				return err
			}
			wins, total := res.FedCrossWins()
			fmt.Printf("FedCross wins %d of %d cells\n", wins, total)
			return nil
		case "table3":
			res, err := experiments.RunTableIII(experiments.TableIIIOptions{
				Profile: prof, Alphas: alphaList,
				Strategies: []core.Strategy{core.InOrder, core.HighestSimilarity, core.LowestSimilarity},
				Model:      modelList[0], Beta: 1.0,
			})
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "fig3":
			opts := experiments.DefaultFig3Options()
			opts.Profile = prof
			res, err := experiments.RunFig3(opts)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "fig4":
			opts := experiments.DefaultFig4Options()
			opts.Profile = prof
			opts.Model = modelList[0]
			res, err := experiments.RunFig4(opts)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "fig5":
			res, err := experiments.RunFig5(experiments.Fig5Options{Profile: prof, Models: modelList, Hets: hetList})
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "fig6":
			opts := experiments.DefaultFig6Options()
			opts.Profile = prof
			opts.Model = modelList[0]
			res, err := experiments.RunFig6(opts)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "fig7":
			opts := experiments.DefaultFig7Options()
			opts.Profile = prof
			opts.Model = modelList[0]
			if *clients > 0 {
				opts.Ns = []int{*clients}
			}
			if *kFlag > 0 {
				opts.KCap = *kFlag
			}
			res, err := experiments.RunFig7(opts)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "fig8":
			opts := experiments.DefaultFig8Options()
			opts.Profile = prof
			opts.Model = modelList[0]
			opts.Alphas = alphaList
			res, err := experiments.RunFig8(opts)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "fig9":
			opts := experiments.DefaultFig9Options()
			opts.Profile = prof
			opts.Model = modelList[0]
			res, err := experiments.RunFig9(opts)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "comm":
			opts := experiments.DefaultCommCurveOptions()
			opts.Profile = prof
			opts.Model = modelList[0]
			if len(splitList(*codecs)) == 0 {
				return fmt.Errorf("-codecs must name at least one codec")
			}
			opts.Codecs = splitList(*codecs)
			opts.Network = *network
			opts.DeadlineSec = *deadline
			res, err := experiments.RunCommCurve(opts)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "robust":
			opts := experiments.DefaultRobustOptions()
			opts.Profile = prof
			opts.Model = modelList[0]
			if *attack != "" && *attack != "none" {
				opts.Attack = *attack
			}
			opts.Scale = *attackScale
			if list := splitList(*reducers); len(list) > 0 {
				opts.Reducers = list
			}
			fr, err := parseFloats(*fracs)
			if err != nil {
				return err
			}
			if len(fr) > 0 {
				opts.Fracs = fr
			}
			res, err := experiments.RunRobust(opts)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "async":
			opts := experiments.DefaultAsyncSweepOptions(prof)
			opts.Model = modelList[0]
			opts.Async = fl.AsyncOptions{StalenessExp: *staleExp}
			bufList, err := parseInts(*buffers)
			if err != nil {
				return err
			}
			if len(bufList) > 0 {
				opts.Buffers = bufList
			}
			ifList, err := parseInts(*inflights)
			if err != nil {
				return err
			}
			if len(ifList) > 0 {
				opts.InFlights = ifList
			}
			// -buffer / -inflight pin a single cell on each axis.
			if *buffer > 0 {
				opts.Buffers = []int{*buffer}
			}
			if *inflight > 0 {
				opts.InFlights = []int{*inflight}
			}
			res, err := experiments.RunAsyncSweep(opts)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "faults":
			opts := experiments.DefaultFaultGridOptions()
			opts.Profile = prof
			opts.Model = modelList[0]
			lv, err := parseFloats(*faultLevels)
			if err != nil {
				return err
			}
			if len(lv) > 0 {
				opts.Levels = lv
			}
			opts.MinUploads = *quorum
			opts.Retries = *retries
			opts.RetryBackoffSec = *retryBackoff
			res, err := experiments.RunFaultGrid(opts)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "churn":
			opts := experiments.DefaultChurnGridOptions()
			opts.Profile = prof
			opts.Model = modelList[0]
			av, err := parseFloats(*avails)
			if err != nil {
				return err
			}
			if len(av) > 0 {
				opts.Availabilities = av
			}
			if churnOpts.Jitter > 0 {
				opts.Jitter = churnOpts.Jitter
			}
			if churnOpts.StartFrac > 0 {
				opts.StartFrac = churnOpts.StartFrac
			}
			if churnOpts.EndFrac > 0 {
				opts.EndFrac = churnOpts.EndFrac
			}
			res, err := experiments.RunChurnGrid(opts)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		case "resume":
			opts := experiments.DefaultResumeCheckOptions()
			opts.Profile = prof
			opts.Model = modelList[0]
			if len(algoList) > 0 {
				opts.Algorithms = algoList
			}
			st, err := parseInts(*stopsFlag)
			if err != nil {
				return err
			}
			opts.StopRounds = st
			res, err := experiments.RunResumeCheck(opts)
			if res != nil {
				if rerr := res.Render(os.Stdout); rerr != nil && err == nil {
					err = rerr
				}
			}
			return err
		case "ablations":
			aopts := experiments.DefaultAblationOptions()
			aopts.Profile = prof
			aopts.Model = modelList[0]
			shuffle, err := experiments.RunAblationShuffle(aopts)
			if err != nil {
				return err
			}
			if err := shuffle.Render(os.Stdout); err != nil {
				return err
			}
			sim, err := experiments.RunAblationSimilarity(aopts)
			if err != nil {
				return err
			}
			if err := sim.Render(os.Stdout); err != nil {
				return err
			}
			prop, err := experiments.RunAblationPropellerCount(aopts, []int{1, 2, 3})
			if err != nil {
				return err
			}
			return prop.Render(os.Stdout)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "comm", "robust", "async", "ablations", "faults", "churn"}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			if errors.Is(err, fl.ErrStopped) {
				fmt.Printf("%s: run stopped at round %d; snapshot written to %s (continue with -resume)\n",
					name, *stopAfter, *checkpoint)
				continue
			}
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println()
	}

	if peak, ok := peakRSSMB(); ok {
		fmt.Printf("peak RSS: %d MiB\n", peak)
		if *rssLimitMB > 0 && peak > *rssLimitMB {
			fatal(fmt.Errorf("peak RSS %d MiB exceeds -rsslimitmb %d MiB", peak, *rssLimitMB))
		}
	} else if *rssLimitMB > 0 {
		fatal(fmt.Errorf("-rsslimitmb set but peak RSS is unavailable on this platform"))
	}
}

// peakRSSMB reports the process high-water resident set size in MiB.
// Linux exposes it as VmHWM in /proc/self/status; elsewhere we fall
// back to the Go heap's high-water mark (an undercount — it misses
// non-heap memory — so the gate only hard-fails when VmHWM is
// readable).
func peakRSSMB() (int, bool) {
	if b, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.Atoi(fields[1]); err == nil {
					return kb / 1024, true
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int(ms.HeapSys / (1 << 20)), false
}

func profileByName(name string) (experiments.Profile, error) {
	switch name {
	case "tiny":
		return experiments.TinyProfile(), nil
	case "small":
		return experiments.SmallProfile(), nil
	case "paper":
		return experiments.PaperProfile(), nil
	default:
		return experiments.Profile{}, fmt.Errorf("unknown profile %q (want tiny, small or paper)", name)
	}
}

// splitList parses a comma-separated flag value; an empty flag yields an
// empty list, and each caller supplies its own default (or error).
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// listOr returns the parsed list, or the flag's default when it is empty.
func listOr(vals []string, def string) []string {
	if len(vals) == 0 {
		return []string{def}
	}
	return vals
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad positive integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseHets(betas string, iid bool) ([]data.Heterogeneity, error) {
	vals, err := parseFloats(betas)
	if err != nil {
		return nil, err
	}
	var hets []data.Heterogeneity
	for _, b := range vals {
		hets = append(hets, data.Heterogeneity{Beta: b})
	}
	if iid {
		hets = append(hets, data.Heterogeneity{IID: true})
	}
	if len(hets) == 0 {
		return nil, fmt.Errorf("-betas is empty and -iid=false: no heterogeneity setting left to run")
	}
	return hets, nil
}

// parseFaultSpec decodes the -faults key=value spec into fault options.
func parseFaultSpec(s string) (fl.FaultOptions, error) {
	var o fl.FaultOptions
	for _, part := range splitList(s) {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return o, fmt.Errorf("bad -faults entry %q (want key=value, e.g. crash=0.1)", part)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return o, fmt.Errorf("bad -faults value in %q: %w", part, err)
		}
		switch strings.TrimSpace(k) {
		case "crash":
			o.CrashRate = x
		case "drop":
			o.DropRate = x
		case "truncate":
			o.TruncateRate = x
		case "corrupt":
			o.CorruptRate = x
		case "dup", "duplicate":
			o.DuplicateRate = x
		case "straggle":
			o.StraggleRate = x
		case "stragglefactor":
			o.StraggleFactor = x
		case "stall":
			o.StallRate = x
		case "stallsec":
			o.StallSec = x
		default:
			return o, fmt.Errorf("unknown -faults key %q (want crash, drop, truncate, corrupt, dup, straggle, stragglefactor, stall, stallsec)", k)
		}
	}
	return o, nil
}

// parseChurnSpec decodes the -churn key=value spec into churn options.
func parseChurnSpec(s string) (fl.ChurnOptions, error) {
	var o fl.ChurnOptions
	for _, part := range splitList(s) {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return o, fmt.Errorf("bad -churn entry %q (want key=value, e.g. avail=0.7)", part)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return o, fmt.Errorf("bad -churn value in %q: %w", part, err)
		}
		switch strings.TrimSpace(k) {
		case "avail", "availability":
			o.Availability = x
		case "period":
			if x != float64(int(x)) || x < 0 {
				return o, fmt.Errorf("bad -churn period %q: want a non-negative integer round count", part)
			}
			o.PeriodRounds = int(x)
		case "jitter":
			o.Jitter = x
		case "start":
			o.StartFrac = x
		case "end":
			o.EndFrac = x
		default:
			return o, fmt.Errorf("unknown -churn key %q (want avail, period, jitter, start, end)", k)
		}
	}
	return o, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedsim:", err)
	os.Exit(1)
}
