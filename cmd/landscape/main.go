// Command landscape trains FedAvg and FedCross on the synthetic vision
// task and dumps their loss-landscape grids (paper Figure 4) in a
// plot-ready tabular format: one line per grid point with x, y, and the
// loss for each method.
package main

import (
	"flag"
	"fmt"
	"os"

	"fedcross/internal/data"
	"fedcross/internal/experiments"
	"fedcross/internal/fl"
	"fedcross/internal/landscape"
)

func main() {
	var (
		model      = flag.String("model", "resnet", "vision model: cnn, resnet, vgg, mlp")
		beta       = flag.Float64("beta", 0.1, "Dirichlet beta; <= 0 selects IID")
		rounds     = flag.Int("rounds", 12, "training rounds before the scan")
		resolution = flag.Int("resolution", 9, "grid resolution (odd)")
		radius     = flag.Float64("radius", 0.5, "scan radius in filter-normalised units")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	prof := experiments.TinyProfile()
	prof.Rounds = *rounds
	het := data.Heterogeneity{IID: *beta <= 0, Beta: *beta}

	grids := map[string]*landscape.Grid{}
	for _, name := range []string{"fedavg", "fedcross"} {
		env, err := prof.BuildEnv("vision10", *model, het, *seed)
		if err != nil {
			fatal(err)
		}
		algo, err := experiments.NewAlgorithm(name)
		if err != nil {
			fatal(err)
		}
		hist, err := fl.Run(algo, env, prof.Config(*seed))
		if err != nil {
			fatal(err)
		}
		opts := landscape.Options{Resolution: *resolution, Radius: *radius, Seed: *seed, MaxSamples: 256}
		grid, err := landscape.Scan2D(env.Model, algo.Global(), env.Fed.Test, opts)
		if err != nil {
			fatal(err)
		}
		sharp, err := landscape.Sharpness(env.Model, algo.Global(), env.Fed.Test, *radius/2, 4, *seed, fl.Workers{})
		if err != nil {
			fatal(err)
		}
		grids[name] = grid
		fmt.Printf("# %s: final acc %.4f, centre loss %.4f, sharpness %.4f\n",
			name, hist.Final().TestAcc, grid.CenterLoss(), sharp)
	}

	fa, fc := grids["fedavg"], grids["fedcross"]
	fmt.Println("x\ty\tloss_fedavg\tloss_fedcross")
	for i := range fa.Xs {
		for j := range fa.Ys {
			fmt.Printf("%.4f\t%.4f\t%.6f\t%.6f\n", fa.Xs[i], fa.Ys[j], fa.Loss[i][j], fc.Loss[i][j])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "landscape:", err)
	os.Exit(1)
}
