// Command datastats renders the client data distributions of the
// synthetic federated datasets (paper Figure 3): for vision tasks, the
// class × client heat map under each Dirichlet beta; for LEAF-style
// tasks, per-client sample counts and class skew.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fedcross/internal/data"
	"fedcross/internal/experiments"
)

func main() {
	var (
		dataset = flag.String("dataset", "vision10", "dataset: vision10, vision100, femnist, shakespeare, sent140")
		betas   = flag.String("betas", "0.1,0.5,1.0", "comma-separated Dirichlet betas (vision datasets)")
		clients = flag.Int("clients", 20, "number of clients")
		show    = flag.Int("show", 10, "clients to display")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	prof := experiments.TinyProfile()
	prof.NumClients = *clients

	switch *dataset {
	case "vision10", "vision100":
		opts := experiments.Fig3Options{Profile: prof, ShowClients: *show, Seed: *seed}
		for _, part := range strings.Split(*betas, ",") {
			b, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fatal(fmt.Errorf("bad beta %q: %w", part, err))
			}
			opts.Betas = append(opts.Betas, b)
		}
		res, err := experiments.RunFig3(opts)
		if err != nil {
			fatal(err)
		}
		if err := res.Render(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		env, err := prof.BuildEnv(*dataset, "cnn", data.Heterogeneity{IID: true}, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d clients, %d training samples, %d test samples, %d classes\n",
			env.Fed.Name, env.NumClients(), env.Fed.TotalTrainSamples(), env.Fed.Test.Len(), env.Fed.Classes)
		fmt.Println("client\tsamples\ttop-class-share")
		for i := 0; i < env.NumClients(); i++ {
			if i >= *show {
				fmt.Printf("... (%d more clients)\n", env.NumClients()-*show)
				break
			}
			shard := env.Fed.LeaseShard(i)
			counts := shard.ClassCounts()
			maxC := 0
			for _, c := range counts {
				if c > maxC {
					maxC = c
				}
			}
			fmt.Printf("%d\t%d\t%.2f\n", i, shard.Len(), float64(maxC)/float64(shard.Len()))
			env.Fed.ReleaseShard(i)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datastats:", err)
	os.Exit(1)
}
