// Command datastats renders the client data distributions of the
// synthetic federated datasets (paper Figure 3): for vision tasks, the
// class × client heat map under each Dirichlet beta; for LEAF-style
// tasks, per-client sample counts and class skew.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fedcross/internal/data"
	"fedcross/internal/experiments"
)

func main() {
	var (
		dataset = flag.String("dataset", "vision10", "dataset: vision10, vision100, femnist, shakespeare, sent140")
		betas   = flag.String("betas", "0.1,0.5,1.0", "comma-separated Dirichlet betas (vision datasets)")
		clients = flag.Int("clients", 20, "number of clients")
		show    = flag.Int("show", 10, "clients to display")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	prof := experiments.TinyProfile()
	prof.NumClients = *clients

	switch {
	// Populations past the lazy cutoff synthesize shards on demand — a
	// class × client heat map at that N is unreadable anyway, so huge
	// vision runs get the per-client summary (plus cache telemetry) too.
	case (*dataset == "vision10" || *dataset == "vision100") && *clients < experiments.LazyClientCutoff:
		opts := experiments.Fig3Options{Profile: prof, ShowClients: *show, Seed: *seed}
		for _, part := range strings.Split(*betas, ",") {
			b, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fatal(fmt.Errorf("bad beta %q: %w", part, err))
			}
			opts.Betas = append(opts.Betas, b)
		}
		res, err := experiments.RunFig3(opts)
		if err != nil {
			fatal(err)
		}
		if err := res.Render(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		env, err := prof.BuildEnv(*dataset, "cnn", data.Heterogeneity{IID: true}, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d clients, %d training samples, %d test samples, %d classes\n",
			env.Fed.Name, env.NumClients(), env.Fed.TotalTrainSamples(), env.Fed.Test.Len(), env.Fed.Classes)
		fmt.Println("client\tsamples\ttop-class-share")
		shown := 0
		for i := 0; i < env.NumClients() && shown < *show; i++ {
			if !env.Fed.Trainable(i) {
				continue // huge lazy populations are mostly empty clients
			}
			shard := env.Fed.LeaseShard(i)
			counts := shard.ClassCounts()
			maxC := 0
			for _, c := range counts {
				if c > maxC {
					maxC = c
				}
			}
			fmt.Printf("%d\t%d\t%.2f\n", i, shard.Len(), float64(maxC)/float64(shard.Len()))
			env.Fed.ReleaseShard(i)
			shown++
		}
		if rest := env.NumClients() - shown; rest > 0 {
			fmt.Printf("... (%d more clients)\n", rest)
		}
		// Lazy sources expose their shard-cache counters; eager
		// federations (small N, LEAF tasks) have no cache and skip the
		// line.
		if stats, ok := env.Fed.SourceStats(); ok {
			fmt.Printf("shard cache: %d resident / %d stripes, %d hits (%d prefetched), %d misses, %d evictions\n",
				stats.Resident, stats.Stripes, stats.Hits, stats.PrefetchHits, stats.Misses, stats.Evictions)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datastats:", err)
	os.Exit(1)
}
