package fedcross

import (
	"testing"
)

// The root package is a façade; these tests pin its surface — every
// public constructor works and the aliases compose into a full run.

func TestPublicAPIEndToEnd(t *testing.T) {
	profile := TinyProfile()
	profile.Rounds = 4
	profile.NumClients = 8
	profile.ClientsPerRound = 3

	env, err := profile.BuildEnv("vision10", "mlp", Heterogeneity{Beta: 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	algo, err := NewFedCross(DefaultFedCrossOptions())
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Run(algo, env, profile.Config(1))
	if err != nil {
		t.Fatal(err)
	}
	if hist.Final().Round != 4 {
		t.Fatalf("final round %d", hist.Final().Round)
	}
	if hist.Final().TestAcc <= 0 {
		t.Fatal("no accuracy recorded")
	}
}

func TestPublicBaselineConstructors(t *testing.T) {
	if a := NewFedAvg(); a.Name() != "fedavg" {
		t.Fatal("fedavg constructor")
	}
	if a, err := NewFedProx(0.01); err != nil || a.Name() != "fedprox" {
		t.Fatalf("fedprox constructor: %v", err)
	}
	if a := NewSCAFFOLD(); a.Name() != "scaffold" {
		t.Fatal("scaffold constructor")
	}
	if a, err := NewFedGen(); err != nil || a.Name() != "fedgen" {
		t.Fatalf("fedgen constructor: %v", err)
	}
	if a := NewCluSamp(); a.Name() != "clusamp" {
		t.Fatal("clusamp constructor")
	}
	for _, name := range AlgorithmNames() {
		if _, err := NewAlgorithm(name); err != nil {
			t.Fatalf("NewAlgorithm(%q): %v", name, err)
		}
	}
}

func TestPublicPrimitives(t *testing.T) {
	v := ParamVector{1, 2}
	w := ParamVector{3, 4}
	if got := CrossAggr(v, w, 0.5); got[0] != 2 || got[1] != 3 {
		t.Fatalf("CrossAggr = %v", got)
	}
	if got := GlobalModelGen([]ParamVector{v, w}); got[0] != 2 {
		t.Fatalf("GlobalModelGen = %v", got)
	}
	if got := CosineSimilarity(v, v); got < 0.999999 {
		t.Fatalf("CosineSimilarity(v,v) = %v", got)
	}
}

func TestPublicStrategyAndAccelConstants(t *testing.T) {
	opts := DefaultFedCrossOptions()
	opts.Strategy = InOrder
	opts.Accel = AccelBoth
	opts.AccelRounds = 2
	if _, err := NewFedCross(opts); err != nil {
		t.Fatal(err)
	}
	opts.Strategy = HighestSimilarity
	if _, err := NewFedCross(opts); err != nil {
		t.Fatal(err)
	}
	opts.Strategy = LowestSimilarity
	opts.Accel = AccelNone
	if _, err := NewFedCross(opts); err != nil {
		t.Fatal(err)
	}
}

func TestPublicLandscape(t *testing.T) {
	profile := TinyProfile()
	profile.NumClients = 4
	env, err := profile.BuildEnv("vision10", "mlp", Heterogeneity{IID: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	algo, err := NewAlgorithm("fedavg")
	if err != nil {
		t.Fatal(err)
	}
	cfg := profile.Config(1)
	cfg.Rounds = 2
	if _, err := Run(algo, env, cfg); err != nil {
		t.Fatal(err)
	}
	opts := LandscapeOptions{Resolution: 3, Radius: 0.2, Seed: 1, MaxSamples: 16}
	grid, err := ScanLandscape(env.Model, algo.Global(), env.Fed.Test, opts)
	if err != nil {
		t.Fatal(err)
	}
	if grid.CenterLoss() <= 0 {
		t.Fatal("centre loss should be positive on an untrained-ish model")
	}
	if _, err := Sharpness(env.Model, algo.Global(), env.Fed.Test, 0.2, 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicDatasetNames(t *testing.T) {
	if len(DatasetNames()) != 5 {
		t.Fatalf("datasets = %v", DatasetNames())
	}
	if DefaultConfig().Validate() != nil {
		t.Fatal("default config invalid")
	}
}
