package fedcross

// One benchmark per table and figure of the paper's evaluation (Section
// IV). Each bench executes the corresponding harness at the tiny profile
// and reports domain metrics (accuracy, sharpness, skew) via b.ReportMetric
// alongside the usual ns/op. Run everything with:
//
//	go test -bench=. -benchmem
//
// The full-scale (slow) variants of the same artifacts run via
// cmd/fedsim -profile paper.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"fedcross/internal/core"
	"fedcross/internal/data"
	"fedcross/internal/experiments"
	"fedcross/internal/fl"
	"fedcross/internal/landscape"
	"fedcross/internal/models"
	"fedcross/internal/nn"
	"fedcross/internal/tensor"
	"fedcross/internal/theory"
)

// benchProfile returns the shared bench sizing: small enough that the
// whole suite finishes in minutes, large enough that learning is visible.
func benchProfile() experiments.Profile {
	p := experiments.TinyProfile()
	p.Rounds = 12
	p.EvalEvery = 4
	return p
}

// compareProfile sizes the benches that compare algorithms head-to-head
// (Tables II, Figure 5): long enough for aggregation quality to separate
// the methods. FedCross's full crossover under extreme skew (β=0.1)
// arrives near round 150 at this scale — see EXPERIMENTS.md — so these
// benches report the moderate-skew and IID regimes the budget can reach.
func compareProfile() experiments.Profile {
	p := experiments.TinyProfile()
	p.Rounds = 50
	p.EvalEvery = 10
	return p
}

// BenchmarkTableI_CommOverhead reproduces Table I: per-round
// communication by method. Shape: FedCross == FedAvg (Low) < FedGen
// (Medium) < SCAFFOLD (High).
func BenchmarkTableI_CommOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableI(10)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.ModelEquivalents, row.Algorithm+"_modeleq")
		}
	}
}

// BenchmarkTableII_Accuracy reproduces a Table II slice: the six methods
// on the CIFAR-10 substitute, one non-IID and the IID setting.
func BenchmarkTableII_Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiments.TableIIOptions{
			Profile:  compareProfile(),
			Models:   []string{"cnn"},
			Datasets: []string{"vision10"},
			Hets:     []data.Heterogeneity{{Beta: 0.5}, {IID: true}},
		}
		res, err := experiments.RunTableII(opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		for _, cell := range res.Cells {
			b.ReportMetric(cell.Acc["fedcross"].Mean, "fedcross_"+cell.Het)
			b.ReportMetric(cell.Acc["fedavg"].Mean, "fedavg_"+cell.Het)
		}
	}
}

// BenchmarkTableII_TextRows reproduces Table II's LSTM rows on the
// Shakespeare and Sent140 substitutes (FedCross vs FedAvg to bound cost).
func BenchmarkTableII_TextRows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiments.TableIIOptions{
			Profile:    benchProfile(),
			Models:     []string{"lstm"},
			Datasets:   []string{"shakespeare", "sent140"},
			Algorithms: []string{"fedavg", "fedcross"},
		}
		res, err := experiments.RunTableII(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, cell := range res.Cells {
			b.ReportMetric(cell.Acc["fedcross"].Mean, "fedcross_"+cell.Dataset)
		}
	}
}

// BenchmarkTableIII_AlphaStrategy reproduces the Table III ablation on a
// reduced alpha set. Shape: highest-similarity is the weakest column.
func BenchmarkTableIII_AlphaStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiments.TableIIIOptions{
			Profile:    benchProfile(),
			Alphas:     []float64{0.5, 0.9, 0.99},
			Strategies: []core.Strategy{core.InOrder, core.HighestSimilarity, core.LowestSimilarity},
			Model:      "cnn",
			Beta:       1.0,
		}
		res, err := experiments.RunTableIII(opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3_Partitions reproduces Figure 3: Dirichlet client
// distributions. Shape: skew(0.1) > skew(0.5) > skew(1.0).
func BenchmarkFig3_Partitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultFig3Options()
		opts.Profile = benchProfile()
		res, err := experiments.RunFig3(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Panels {
			b.ReportMetric(p.SkewScore, "skew_beta")
		}
	}
}

// BenchmarkFig4_Landscape reproduces Figure 4: loss-landscape flatness of
// FedAvg vs FedCross global models. Shape: FedCross sharpness lower.
func BenchmarkFig4_Landscape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultFig4Options()
		opts.Profile = benchProfile()
		opts.Model = "resnet"
		opts.Scan.Resolution = 5
		opts.Scan.MaxSamples = 64
		opts.SharpnessDirs = 2
		res, err := experiments.RunFig4(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Panels {
			b.ReportMetric(p.FedAvgSharpness, "fedavg_sharp_"+p.Het)
			b.ReportMetric(p.FedCrossSharpness, "fedcross_sharp_"+p.Het)
		}
	}
}

// BenchmarkFig5_LearningCurves reproduces a Figure 5 panel: all six
// methods' accuracy-vs-round curves (CNN, Dir(0.5)).
func BenchmarkFig5_LearningCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiments.Fig5Options{
			Profile: compareProfile(),
			Models:  []string{"cnn"},
			Hets:    []data.Heterogeneity{{Beta: 0.5}},
		}
		res, err := experiments.RunFig5(opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6_ActivatedClients reproduces Figure 6: the K sweep.
// Shape: accuracy rises with K then saturates.
func BenchmarkFig6_ActivatedClients(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiments.Fig6Options{
			Profile:    benchProfile(),
			Ks:         []int{2, 4, 8},
			Model:      "cnn",
			Beta:       0.1,
			Algorithms: []string{"fedavg", "fedcross"},
		}
		res, err := experiments.RunFig6(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Cells {
			b.ReportMetric(c.Best["fedcross"], "fedcross_bestK")
		}
	}
}

// BenchmarkFig7_TotalClients reproduces Figure 7: the N sweep with 10%
// participation and a fixed data budget.
func BenchmarkFig7_TotalClients(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiments.Fig7Options{
			Profile:      benchProfile(),
			Ns:           []int{10, 20, 40},
			Model:        "cnn",
			Beta:         0.5,
			TotalSamples: 300,
			Algorithms:   []string{"fedavg", "fedcross"},
		}
		res, err := experiments.RunFig7(opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8_AlphaCurves reproduces Figure 8: learning curves per
// alpha against the FedAvg reference, for both recommended strategies.
func BenchmarkFig8_AlphaCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiments.Fig8Options{
			Profile:    benchProfile(),
			Alphas:     []float64{0.5, 0.99},
			Strategies: []core.Strategy{core.InOrder, core.LowestSimilarity},
			Beta:       1.0,
			Model:      "cnn",
		}
		res, err := experiments.RunFig8(opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9_Acceleration reproduces Figure 9: vanilla vs PM vs DA vs
// PM-DA acceleration variants.
func BenchmarkFig9_Acceleration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiments.Fig9Options{
			Profile:        benchProfile(),
			Model:          "cnn",
			Hets:           []data.Heterogeneity{{Beta: 0.1}},
			AccelRounds:    6,
			PropellerCount: 2,
		}
		res, err := experiments.RunFig9(opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Shuffle quantifies Algorithm 1's shuffle-dispatching
// step (DESIGN.md ablation).
func BenchmarkAblation_Shuffle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultAblationOptions()
		opts.Profile = benchProfile()
		res, err := experiments.RunAblationShuffle(opts)
		if err != nil {
			b.Fatal(err)
		}
		if s, ok := res.Get("shuffle"); ok {
			b.ReportMetric(s.Mean, "shuffle_acc")
		}
		if s, ok := res.Get("no-shuffle"); ok {
			b.ReportMetric(s.Mean, "noshuffle_acc")
		}
	}
}

// BenchmarkAblation_SimilarityMeasure compares cosine, the paper's
// printed formula, and Euclidean distance behind lowest-similarity
// selection (DESIGN.md §5).
func BenchmarkAblation_SimilarityMeasure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultAblationOptions()
		opts.Profile = benchProfile()
		res, err := experiments.RunAblationSimilarity(opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheory_Bound exercises the Theorem-1 machinery: the quadratic
// federation run plus the bound evaluation.
func BenchmarkTheory_Bound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := tensor.NewRNG(1)
		q := theory.NewQuadraticFederation(8, 16, 1.0, rng)
		a := theory.Assumptions{L: 1, Mu: 1, E: 5, Gamma: q.Gamma(), Delta1: q.WStar.Dot(q.WStar)}
		res := q.RunFedCross(100, a.E, 0.9, a)
		a.G2 = res.MaxGradNorm2
		last := res.Gap[len(res.Gap)-1]
		b.ReportMetric(last, "final_gap")
		b.ReportMetric(a.Bound(100*a.E), "theorem1_bound")
	}
}

// BenchmarkRoundParallel measures the worker-pool round engine: the same
// FedCross run at Parallelism=1 (the old strictly serial engine) and at
// every core. The runs produce bit-identical histories — see
// TestParallelismInvariance — so the ratio of the two timings is pure
// speedup.
func BenchmarkRoundParallel(b *testing.B) {
	prof := experiments.TinyProfile()
	prof.Rounds = 4
	prof.EvalEvery = 0
	prof.NumClients = 16
	prof.ClientsPerRound = 8
	cases := []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{fmt.Sprintf("parallel-%d", runtime.NumCPU()), runtime.NumCPU()},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			prof.Parallelism = bc.workers
			env, err := prof.BuildEnv("vision10", "cnn", data.Heterogeneity{Beta: 0.5}, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algo := core.MustNew(core.DefaultOptions())
				hist, err := fl.Run(algo, env, prof.Config(1))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(hist.Final().TestAcc, "final_acc")
				b.ReportMetric(float64(hist.TotalBytes())/float64(prof.Rounds), "wireB/round")
			}
		})
	}
}

// BenchmarkExperimentScheduler measures the experiment scheduler on a
// TableII smoke slice — six algorithms × two heterogeneity settings, the
// grid whose serial execution dominated the pre-scheduler wall-clock — at
// sequential cells (jobs-1) and at every core. Results are bit-identical
// (TestSchedulerDeterminism), so the timing ratio is pure grid-level
// speedup; tableII_smoke_s reports the wall-clock in seconds for the
// BENCH trajectory, and cpus records the cores the ratio was measured
// on — on a 1-core box jobs-all necessarily ≈ jobs-1 (only the shared
// environment builds help), so read the ratio together with cpus.
func BenchmarkExperimentScheduler(b *testing.B) {
	cases := []struct {
		name string
		jobs int
	}{
		{"jobs-1", 1},
		{"jobs-all", runtime.NumCPU()},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prof := benchProfile()
				prof.Jobs = bc.jobs
				start := time.Now()
				res, err := experiments.RunTableII(experiments.TableIIOptions{
					Profile:  prof,
					Models:   []string{"cnn"},
					Datasets: []string{"vision10"},
					Hets:     []data.Heterogeneity{{Beta: 0.5}, {IID: true}},
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := res.Render(io.Discard); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(time.Since(start).Seconds(), "tableII_smoke_s")
				b.ReportMetric(float64(runtime.NumCPU()), "cpus")
			}
		})
	}
}

// BenchmarkTransportCodecs measures the encode+decode cost of every wire
// codec on a model-sized payload and reports the bytes each one puts on
// the wire — the communication half of the perf trajectory, next to the
// alloc/ns numbers the compute path tracks.
func BenchmarkTransportCodecs(b *testing.B) {
	rng := tensor.NewRNG(1)
	vec := make(nn.ParamVector, 1<<16)
	for i := range vec {
		vec[i] = rng.Normal(0, 1)
	}
	for _, name := range []string{"identity", "fp16", "int8", "topk"} {
		codec, err := nn.CodecByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			buf := codec.Encode(nil, vec)
			dst := make(nn.ParamVector, len(vec))
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = codec.Encode(buf[:0], vec)
				if _, err := codec.Decode(dst, buf); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(codec.EncodedSize(len(vec))), "wireB/payload")
		})
	}
}

// --- micro-benchmarks of the primitives the paper's loop is built from ---

func BenchmarkCrossAggr(b *testing.B) {
	rng := tensor.NewRNG(1)
	v := make(nn.ParamVector, 1<<16)
	w := make(nn.ParamVector, 1<<16)
	for i := range v {
		v[i] = rng.Normal(0, 1)
		w[i] = rng.Normal(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.CrossAggr(v, w, 0.99)
	}
}

func BenchmarkCosineSimilarity(b *testing.B) {
	rng := tensor.NewRNG(1)
	v := make(nn.ParamVector, 1<<16)
	w := make(nn.ParamVector, 1<<16)
	for i := range v {
		v[i] = rng.Normal(0, 1)
		w[i] = rng.Normal(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.CosineSimilarity(v, w)
	}
}

// BenchmarkSimilarityMatrix measures the fused, norm-cached Gram pass
// against the naive K×(K−1) pairwise loop CoModelSel used to run per
// round (K uploads of 2^16 parameters).
func BenchmarkSimilarityMatrix(b *testing.B) {
	rng := tensor.NewRNG(1)
	const k = 10
	w := make([]nn.ParamVector, k)
	for i := range w {
		w[i] = make(nn.ParamVector, 1<<16)
		for j := range w[i] {
			w[i][j] = rng.Normal(0, 1)
		}
	}
	b.Run("gram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.NewSimMatrix(w, core.CosineMeasure(), fl.Workers{})
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for m := 0; m < k; m++ {
				_ = core.CoModelSel(core.LowestSimilarity, m, 0, w, core.CosineSimilarity)
			}
		}
	})
}

func BenchmarkLocalTrainingCNN(b *testing.B) {
	cfg := data.VisionConfig{
		Classes: 10, Features: models.VisionFeatures,
		TrainPerClass: 10, TestPerClass: 1,
		ModesPerClass: 2, Sep: 0.6, Noise: 0.8, Seed: 1,
	}
	train, _ := data.GenerateVision(cfg)
	factory := models.CNN(10)
	init := nn.FlattenParams(factory.New(tensor.NewRNG(1)).Params())
	rng := tensor.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := fl.TrainLocal(factory, train, fl.LocalSpec{
			Init: init, Epochs: 1, BatchSize: 25, LR: 0.03, Momentum: 0.5,
		}, rng.Split())
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReducers measures every aggregation rule on a cohort of 10
// model-sized uploads (2^16 parameters) — the server-side cost a robust
// rule adds over the plain mean. The rank-based rules (trimmed mean,
// median) pay a per-coordinate sort; Krum pays a fused K×K distance
// matrix plus score sort, Multi-Krum the same matrix plus a selected
// mean.
func BenchmarkReducers(b *testing.B) {
	rng := tensor.NewRNG(1)
	const k = 10
	ups := make([]nn.ParamVector, k)
	for i := range ups {
		ups[i] = make(nn.ParamVector, 1<<16)
		for j := range ups[i] {
			ups[i][j] = rng.Normal(0, 1)
		}
	}
	for _, name := range []string{"mean", "trimmed:0.25", "median", "krum", "multikrum"} {
		r, err := core.ReducerByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fl.ReduceUploads(r, ups, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTreeReduce measures the server's aggregation fold at
// cohort sizes from the legacy serial regime (K=64, single leaf group)
// up to the tree regime (K=1024, 16 groups combined pairwise), serial vs
// every core. The tree shape is fixed by K alone — results are
// bit-identical at every fan-out (TestTreeMeanFanoutInvariance) — so the
// timing ratio is pure aggregation speedup.
func BenchmarkTreeReduce(b *testing.B) {
	rng := tensor.NewRNG(1)
	const dim = 1 << 16
	for _, k := range []int{64, 256, 1024} {
		ups := make([]nn.ParamVector, k)
		ws := make([]float64, k)
		for i := range ups {
			ups[i] = make(nn.ParamVector, dim)
			for j := range ups[i] {
				ups[i][j] = rng.Normal(0, 1)
			}
			ws[i] = float64(1 + rng.Intn(40))
		}
		for _, workers := range []int{1, runtime.NumCPU()} {
			b.Run(fmt.Sprintf("k%d-w%d", k, workers), func(b *testing.B) {
				r := fl.MeanReducer{}
				r.SetWorkers(fl.Limit(workers))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := fl.ReduceUploads(&r, ups, ws); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLazyShardSynthesis measures the virtual-client path: leasing
// shards from a Lazy source sized so every lease is a cache miss
// (synthesis + eviction, the steady state of a huge-N round) versus the
// all-hits regime, reporting shards/s.
func BenchmarkLazyShardSynthesis(b *testing.B) {
	cfg := data.VisionConfig{
		Classes: 10, Features: models.VisionFeatures,
		TrainPerClass: 100, TestPerClass: 1,
		ModesPerClass: 2, Sep: 0.6, Noise: 0.8, Seed: 1,
	}
	train, _ := data.GenerateVision(cfg)
	const n = 500
	cases := []struct {
		name     string
		capacity int
	}{
		{"miss", 8}, // capacity ≪ clients: every lease synthesizes
		{"hit", n},  // capacity ≥ clients: steady-state cache hits
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			asg := data.AssignDirichlet(train, n, 0.5, tensor.NewRNG(2))
			src := data.NewLazy(train, asg, bc.capacity)
			start := time.Now()
			leases := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for ci := 0; ci < n; ci++ {
					if src.Size(ci) == 0 {
						continue
					}
					src.Shard(ci)
					src.Release(ci)
					leases++
				}
			}
			b.ReportMetric(float64(leases)/time.Since(start).Seconds(), "shards/s")
			b.ReportMetric(float64(src.Resident()), "resident")
		})
	}
}

// singleMutexLazy replicates the pre-striping lease path the sharded
// cache replaced — one mutex over the whole cache, row synthesis under
// that lock, and an O(resident) eviction scan — as the frozen baseline
// for BenchmarkLazyShardSynthesisParallel. The CI perf gate holds the
// striped path at ≥3× this implementation under contention.
type singleMutexLazy struct {
	mu       sync.Mutex
	base     *data.Dataset
	asg      *data.Assignment
	capacity int
	cache    map[int]*smShard
	tick     uint64
}

type smShard struct {
	ds     *data.Dataset
	leases int
	used   uint64
}

func (l *singleMutexLazy) Shard(id int) *data.Dataset {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.cache[id]; ok {
		l.tick++
		e.leases++
		e.used = l.tick
		return e.ds
	}
	ds := l.base.Subset(l.asg.Rows(id)) // synthesized under the global lock
	for len(l.cache) >= l.capacity {
		victim, best := -1, uint64(0)
		for cid, e := range l.cache {
			if e.leases > 0 {
				continue
			}
			if victim < 0 || e.used < best {
				victim, best = cid, e.used
			}
		}
		if victim < 0 {
			break
		}
		delete(l.cache, victim)
	}
	l.tick++
	l.cache[id] = &smShard{ds: ds, leases: 1, used: l.tick}
	return ds
}

func (l *singleMutexLazy) Release(id int) {
	l.mu.Lock()
	l.cache[id].leases--
	l.mu.Unlock()
}

// BenchmarkLazyShardSynthesisParallel is the contended lease path at
// huge-K scale: NumCPU workers lease/release a K=4096 population through
// a 512-slot cache (every lease a miss-plus-evict, the steady state of a
// million-client round), baseline single-mutex vs the ID-sharded cache
// at 64 stripes. Striping wins twice: synthesis runs outside the lock
// (parallel across cores) and the eviction scan shrinks from O(resident)
// to O(resident/stripes). Reports shards/s; CI gates striped ≥3×
// baseline.
func BenchmarkLazyShardSynthesisParallel(b *testing.B) {
	cfg := data.VisionConfig{
		Classes: 10, Features: models.VisionFeatures,
		TrainPerClass: 100, TestPerClass: 1,
		ModesPerClass: 2, Sep: 0.6, Noise: 0.8, Seed: 1,
	}
	train, _ := data.GenerateVision(cfg)
	const n = 4096
	const capacity = 512
	asg := data.AssignDirichlet(train, n, 0.5, tensor.NewRNG(2))
	var ids []int
	for ci := 0; ci < n; ci++ {
		if asg.Size(ci) > 0 {
			ids = append(ids, ci)
		}
	}
	workers := runtime.NumCPU()
	hammer := func(b *testing.B, shard func(int) *data.Dataset, release func(int)) {
		start := time.Now()
		leases := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Stride so each worker sweeps every stripe and
					// same-id collisions across workers are routine.
					for j := w; j < len(ids); j += workers {
						ci := ids[j]
						shard(ci)
						release(ci)
					}
				}(w)
			}
			wg.Wait()
			leases += len(ids)
		}
		b.ReportMetric(float64(leases)/time.Since(start).Seconds(), "shards/s")
	}
	b.Run("baseline", func(b *testing.B) {
		src := &singleMutexLazy{base: train, asg: asg, capacity: capacity, cache: map[int]*smShard{}}
		hammer(b, src.Shard, src.Release)
	})
	b.Run("striped", func(b *testing.B) {
		src := data.NewLazyStriped(train, asg, capacity, 64)
		hammer(b, src.Shard, src.Release)
		if src.Outstanding() != 0 {
			b.Fatalf("%d leases outstanding after bench", src.Outstanding())
		}
	})
}

// BenchmarkLazyShardPrefetchOverlap measures the lease phase a round
// actually waits on: cold (every shard synthesized at lease time — the
// serial prepare phase of a huge-K round) vs warmed (the cohort handed
// to the background pool beforehand, as the engines do with
// PrefetchRounds > 0, so leases are pure cache hits). Per-iteration
// setup and the warm-up itself run off the clock; the gap is the
// wall-clock a training round no longer spends preparing shards.
func BenchmarkLazyShardPrefetchOverlap(b *testing.B) {
	cfg := data.VisionConfig{
		Classes: 10, Features: models.VisionFeatures,
		TrainPerClass: 100, TestPerClass: 1,
		ModesPerClass: 2, Sep: 0.6, Noise: 0.8, Seed: 1,
	}
	train, _ := data.GenerateVision(cfg)
	const n = 1024
	asg := data.AssignDirichlet(train, n, 0.5, tensor.NewRNG(2))
	var ids []int
	for ci := 0; ci < n; ci++ {
		if asg.Size(ci) > 0 {
			ids = append(ids, ci)
		}
	}
	leasePhase := func(src *data.Lazy) {
		for _, ci := range ids {
			src.Shard(ci)
			src.Release(ci)
		}
	}
	for _, warmed := range []bool{false, true} {
		name := "cold"
		if warmed {
			name = "warmed"
		}
		b.Run(name, func(b *testing.B) {
			start := time.Duration(0)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				src := data.NewLazy(train, asg, n)
				if warmed {
					src.Prefetch(ids)
					src.WaitPrefetch()
				}
				b.StartTimer()
				t0 := time.Now()
				leasePhase(src)
				start += time.Since(t0)
			}
			b.ReportMetric(float64(b.N*len(ids))/start.Seconds(), "shards/s")
		})
	}
}

// BenchmarkFig7_MillionClients pins the paper's Figure-7 axis at its
// target scale: one Fig-7 cell with N=10^6 virtual clients, 100
// activated per round (the participation cap), shards synthesized on
// lease. The reported peak_rss_mb is the whole-process high-water mark —
// the memory-boundedness record for the BENCH trajectory (the same gate
// CI enforces via fedsim -rsslimitmb).
func BenchmarkFig7_MillionClients(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := experiments.TinyProfile()
		p.Rounds = 1
		p.EvalEvery = 0
		opts := experiments.Fig7Options{
			Profile: p, Ns: []int{1_000_000}, Model: "mlp", Beta: 0.5,
			TotalSamples: 300, Algorithms: []string{"fedavg"},
		}
		res, err := experiments.RunFig7(opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Cells[0].K != 100 {
			b.Fatalf("K = %d, want the 100-client cap", res.Cells[0].K)
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapSys)/(1<<20), "peak_rss_mb")
}

// BenchmarkAsyncRound measures the buffered-async (FedBuff) engine end to
// end at the tiny profile: 12 buffered commits per iteration, reporting
// model-arrival throughput — the async counterpart of the sync engine's
// BenchmarkRoundParallel. Runs are bit-identical at every fan-out
// (TestAsyncFoldDeterminism), so serial vs parallel timing is pure
// speedup.
func BenchmarkAsyncRound(b *testing.B) {
	prof := experiments.TinyProfile()
	prof.EvalEvery = 0
	prof.NumClients = 16
	prof.ClientsPerRound = 8
	cases := []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{fmt.Sprintf("parallel-%d", runtime.NumCPU()), runtime.NumCPU()},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			prof.Parallelism = bc.workers
			env, err := prof.BuildEnv("vision10", "cnn", data.Heterogeneity{Beta: 0.5}, 1)
			if err != nil {
				b.Fatal(err)
			}
			opts := fl.AsyncOptions{Buffer: 4, InFlight: 8, Commits: 12}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				hist, err := fl.RunAsync(env, prof.Config(1), opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(hist.Comm.ModelsUp)/time.Since(start).Seconds(), "arrivals/s")
				b.ReportMetric(hist.Final().TestAcc, "final_acc")
			}
		})
	}
}

func BenchmarkLandscapeScan(b *testing.B) {
	cfg := data.VisionConfig{
		Classes: 4, Features: 16,
		TrainPerClass: 10, TestPerClass: 8,
		ModesPerClass: 1, Sep: 1, Noise: 0.3, Seed: 1,
	}
	_, test := data.GenerateVision(cfg)
	factory := models.MLP(16, 8, 4)
	vec := nn.FlattenParams(factory.New(tensor.NewRNG(1)).Params())
	opts := landscape.Options{Resolution: 5, Radius: 0.3, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := landscape.Scan2D(factory, vec, test, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchedMatMul compares one fused batched multiply over G
// parameter groups against the loop of G solo multiplies it replaces —
// the kernel-level half of the multi-client fusion story. Results are
// bit-identical by construction (TestBatchMatMulMatchesLooped); the
// delta is pure dispatch and locality.
func BenchmarkBatchedMatMul(b *testing.B) {
	rng := tensor.NewRNG(1)
	const G, m, k, n = 8, 32, 64, 64
	a := rng.Uniform(-1, 1, G, m, k)
	w := rng.Uniform(-1, 1, G, k, n)
	dst := tensor.Zeros(G, m, n)
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.BatchMatMulTo(dst, a, w)
		}
	})
	b.Run("looped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for g := 0; g < G; g++ {
				tensor.MatMulTo(
					tensor.New(dst.Data[g*m*n:(g+1)*m*n], m, n),
					tensor.New(a.Data[g*m*k:(g+1)*m*k], m, k),
					tensor.New(w.Data[g*k*n:(g+1)*k*n], k, n))
			}
		}
	})
}

// BenchmarkTrainAllFanout measures a CNN cohort of 8 clients trained at
// increasing fusion widths on one worker. fanout=1 is the solo reference
// path; higher fan-outs amortize per-layer dispatch across clients while
// returning bit-identical results (TestBatchFanoutBitIdentical).
func BenchmarkTrainAllFanout(b *testing.B) {
	cfg := data.VisionConfig{
		Classes: 10, Features: models.VisionFeatures,
		TrainPerClass: 40, TestPerClass: 1,
		ModesPerClass: 2, Sep: 0.6, Noise: 0.8, Seed: 1,
	}
	const clients = 8
	fed := data.BuildVision(cfg, clients, data.Heterogeneity{IID: true}, 2)
	env := &fl.Env{Fed: fed, Model: models.CNN(10)}
	init := nn.FlattenParams(env.Model.New(tensor.NewRNG(1)).Params())
	rng := tensor.NewRNG(3)
	for _, fanout := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("fanout%d", fanout), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				jobs := make([]fl.LocalJob, clients)
				for c := range jobs {
					jobs[c] = fl.LocalJob{
						Client: c,
						Spec: fl.LocalSpec{Init: init, Epochs: 1, BatchSize: 25,
							LR: 0.03, Momentum: 0.5},
						RNG: rng.Split(),
					}
				}
				if _, err := fl.TrainAllFanout(env, jobs, fl.Limit(1), fanout); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFaultedRound measures the round engine under the full fault
// mix — crashes, wire drops/truncation/corruption, duplicates, retries
// and a quorum — against the identical benign configuration. The
// faulted/benign ns/op ratio is the injection overhead (the plan is a
// pure hash, so it should be noise), and the fault telemetry lands as
// domain metrics for the BENCH trajectory.
func BenchmarkFaultedRound(b *testing.B) {
	prof := experiments.TinyProfile()
	prof.Rounds = 4
	prof.EvalEvery = 0
	prof.NumClients = 16
	prof.ClientsPerRound = 8
	prof.Parallelism = runtime.NumCPU()
	cases := []struct {
		name   string
		faults fl.FaultOptions
	}{
		{"benign", fl.FaultOptions{}},
		{"faulted", fl.FaultOptions{
			CrashRate: 0.1, DropRate: 0.1, TruncateRate: 0.05,
			CorruptRate: 0.05, DuplicateRate: 0.05, StraggleRate: 0.1,
		}},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			prof.Faults = bc.faults
			prof.MinUploads = 2
			prof.Retries = 2
			prof.RetryBackoffSec = 0.05
			env, err := prof.BuildEnv("vision10", "cnn", data.Heterogeneity{Beta: 0.5}, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hist, err := fl.Run(core.MustNew(core.DefaultOptions()), env, prof.Config(1))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(hist.Crashes+hist.FaultDrops)/float64(prof.Rounds), "faults/round")
				b.ReportMetric(float64(hist.Retries)/float64(prof.Rounds), "retries/round")
			}
		})
	}
}

// BenchmarkCheckpointRoundTrip measures the crash-safety tax: a run
// killed at its final round boundary (training + write-ahead snapshot)
// and the resume leg that reloads the snapshot and reconstructs the
// byte-identical history. snapshot_kb records the on-disk footprint of
// the full engine state — model, algorithm tensors, RNG positions,
// transport counters and metric history.
func BenchmarkCheckpointRoundTrip(b *testing.B) {
	prof := experiments.TinyProfile()
	prof.Rounds = 2
	prof.EvalEvery = 0
	prof.NumClients = 16
	prof.ClientsPerRound = 8
	env, err := prof.BuildEnv("vision10", "cnn", data.Heterogeneity{Beta: 0.5}, 1)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := filepath.Join(dir, fmt.Sprintf("bench-%d.ckpt", i))
		killed := prof.Config(1)
		killed.Checkpoint = fl.CheckpointOptions{Path: path, StopAfterRound: prof.Rounds}
		if _, err := fl.Run(core.MustNew(core.DefaultOptions()), env, killed); !errors.Is(err, fl.ErrStopped) {
			b.Fatal(err)
		}
		resumed := prof.Config(1)
		resumed.Checkpoint = fl.CheckpointOptions{Path: path, Resume: true}
		if _, err := fl.Run(core.MustNew(core.DefaultOptions()), env, resumed); err != nil {
			b.Fatal(err)
		}
		if fi, err := os.Stat(path); err == nil {
			b.ReportMetric(float64(fi.Size())/1024, "snapshot_kb")
		}
	}
}
