// Package fedcross is the public API of the FedCross reproduction: a
// federated-learning simulation library implementing the multi-model
// cross-aggregation training scheme of "FedCross: Towards Accurate
// Federated Learning via Multi-Model Cross-Aggregation" (Hu et al., ICDE
// 2024) together with the five baselines it is evaluated against, a
// from-scratch neural-network substrate, synthetic federated datasets,
// loss-landscape analysis, and per-table/figure experiment harnesses.
//
// Quick start:
//
//	env, _ := fedcross.TinyProfile().BuildEnv("vision10", "cnn",
//	    fedcross.Heterogeneity{Beta: 0.5}, 1)
//	algo, _ := fedcross.NewFedCross(fedcross.DefaultFedCrossOptions())
//	hist, _ := fedcross.Run(algo, env, fedcross.TinyProfile().Config(1))
//	fmt.Printf("final accuracy: %.4f\n", hist.Final().TestAcc)
//
// Each round's client-local training fans out across all CPU cores by
// default. Config.Parallelism caps the worker pool (1 forces serial
// execution); every setting produces bit-identical results because each
// client's RNG stream is split from the simulation seed before dispatch.
//
// The package re-exports the stable surface of the internal packages via
// type aliases, so all methods documented there apply unchanged.
package fedcross

import (
	"fedcross/internal/baselines"
	"fedcross/internal/core"
	"fedcross/internal/data"
	"fedcross/internal/experiments"
	"fedcross/internal/fl"
	"fedcross/internal/landscape"
	"fedcross/internal/models"
	"fedcross/internal/nn"
	"fedcross/internal/theory"
)

// --- simulation substrate --------------------------------------------------

// Algorithm is the pluggable FL method interface; see fl.Algorithm.
type Algorithm = fl.Algorithm

// Config holds round-level hyper-parameters; see fl.Config.
type Config = fl.Config

// Env couples a federated dataset with a model architecture; see fl.Env.
type Env = fl.Env

// History is a run's metric record; see fl.History.
type History = fl.History

// RoundMetric is one evaluated round; see fl.RoundMetric.
type RoundMetric = fl.RoundMetric

// CommProfile counts per-round communication payloads; see fl.CommProfile.
type CommProfile = fl.CommProfile

// TransportOptions selects the simulated wire (codec, link model, round
// deadline); see fl.TransportOptions. Set it via Config.Transport.
type TransportOptions = fl.TransportOptions

// NetworkModel describes simulated per-client link conditions; see
// fl.NetworkModel.
type NetworkModel = fl.NetworkModel

// NetworkByName resolves a link model from its flag spelling ("none",
// "fiber", "wifi", "lte", "edge").
func NetworkByName(name string) (NetworkModel, error) { return fl.NetworkByName(name) }

// Codec is the model-payload compression interface; see nn.Codec.
type Codec = nn.Codec

// CodecByName resolves a codec from its flag spelling ("identity",
// "fp16", "int8", "topk[:frac]").
func CodecByName(name string) (Codec, error) { return nn.CodecByName(name) }

// ParamVector is a flattened model parameter vector; see nn.ParamVector.
type ParamVector = nn.ParamVector

// Heterogeneity names a client data-distribution setting (IID or Dir(β));
// see data.Heterogeneity.
type Heterogeneity = data.Heterogeneity

// Federated couples client shards with a shared test set; see
// data.Federated.
type Federated = data.Federated

// ModelFactory constructs fresh model instances; see models.Factory.
type ModelFactory = models.Factory

// DefaultConfig returns the paper-mirroring runner configuration at test
// scale.
func DefaultConfig() Config { return fl.DefaultConfig() }

// Run executes a full FL simulation and returns its metric history.
func Run(algo Algorithm, env *Env, cfg Config) (*History, error) {
	return fl.Run(algo, env, cfg)
}

// --- FedCross (the paper's contribution) -----------------------------------

// FedCross is the multi-model cross-aggregation algorithm; see
// core.FedCross.
type FedCross = core.FedCross

// FedCrossOptions configures FedCross; see core.Options.
type FedCrossOptions = core.Options

// Strategy names a collaborative-model selection criterion.
type Strategy = core.Strategy

// Selection strategies (Section III-B.1 of the paper).
const (
	InOrder           = core.InOrder
	HighestSimilarity = core.HighestSimilarity
	LowestSimilarity  = core.LowestSimilarity
)

// AccelMode selects a training-acceleration method (Section III-D).
type AccelMode = core.AccelMode

// Acceleration modes.
const (
	AccelNone         = core.AccelNone
	AccelPropeller    = core.AccelPropeller
	AccelDynamicAlpha = core.AccelDynamicAlpha
	AccelBoth         = core.AccelBoth
)

// DefaultFedCrossOptions mirrors the paper's recommended setting
// (α = 0.99, lowest-similarity selection).
func DefaultFedCrossOptions() FedCrossOptions { return core.DefaultOptions() }

// NewFedCross constructs a FedCross instance.
func NewFedCross(opts FedCrossOptions) (*FedCross, error) { return core.New(opts) }

// CosineSimilarity is the default model-similarity measure.
func CosineSimilarity(a, b ParamVector) float64 { return core.CosineSimilarity(a, b) }

// SimilarityMeasure couples a pairwise similarity with the fused form the
// per-round Gram pass uses; see core.Measure.
type SimilarityMeasure = core.Measure

// CosineMeasure is the default similarity measure (what the paper names).
func CosineMeasure() SimilarityMeasure { return core.CosineMeasure() }

// PaperMeasure is the paper's printed sum-of-norms formula.
func PaperMeasure() SimilarityMeasure { return core.PaperMeasure() }

// EuclideanMeasure is negated L2 distance.
func EuclideanMeasure() SimilarityMeasure { return core.EuclideanMeasure() }

// SimilarityByName resolves a measure for flags ("cosine", "paper",
// "euclidean").
func SimilarityByName(name string) (SimilarityMeasure, error) {
	return core.SimilarityByName(name)
}

// CrossAggr fuses a model with its collaborative model:
// α·v + (1−α)·v_co.
func CrossAggr(v, vco ParamVector, alpha float64) ParamVector {
	return core.CrossAggr(v, vco, alpha)
}

// GlobalModelGen averages middleware models into the deployment model.
func GlobalModelGen(w []ParamVector) ParamVector { return core.GlobalModelGen(w) }

// --- baselines ---------------------------------------------------------------

// NewFedAvg returns the classic FedAvg baseline.
func NewFedAvg() Algorithm { return baselines.NewFedAvg() }

// NewFedProx returns the FedProx baseline with proximal coefficient mu.
func NewFedProx(mu float64) (Algorithm, error) { return baselines.NewFedProx(mu) }

// NewSCAFFOLD returns the SCAFFOLD baseline.
func NewSCAFFOLD() Algorithm { return baselines.NewSCAFFOLD() }

// NewFedGen returns the FedGen (data-free distillation) baseline with
// default generator settings.
func NewFedGen() (Algorithm, error) { return baselines.NewFedGen(baselines.DefaultFedGenOptions()) }

// NewCluSamp returns the clustered-sampling baseline.
func NewCluSamp() Algorithm { return baselines.NewCluSamp() }

// NewAlgorithm builds any of the six methods by name ("fedavg",
// "fedprox", "scaffold", "fedgen", "clusamp", "fedcross").
func NewAlgorithm(name string) (Algorithm, error) { return experiments.NewAlgorithm(name) }

// AlgorithmNames lists the six methods in Table-I order.
func AlgorithmNames() []string { return experiments.AlgorithmNames() }

// --- experiment harnesses ----------------------------------------------------

// Profile sizes an experiment run; see experiments.Profile.
type Profile = experiments.Profile

// TinyProfile sizes runs for tests and benches (seconds).
func TinyProfile() Profile { return experiments.TinyProfile() }

// SmallProfile sizes the runnable examples (minutes).
func SmallProfile() Profile { return experiments.SmallProfile() }

// PaperProfile mirrors the paper's relative setup (N=100, K=10, E=5,
// B=50).
func PaperProfile() Profile { return experiments.PaperProfile() }

// DatasetNames lists the five evaluation datasets.
func DatasetNames() []string { return experiments.DatasetNames() }

// CommCurveOptions configures the communication-vs-accuracy sweep; see
// experiments.CommCurveOptions.
type CommCurveOptions = experiments.CommCurveOptions

// CommCurveResult holds the sweep's per-codec trajectories; see
// experiments.CommCurveResult.
type CommCurveResult = experiments.CommCurveResult

// RunCommCurve runs one algorithm under several wire codecs on identical
// environments and reports accuracy against measured bytes on the wire.
func RunCommCurve(opts CommCurveOptions) (*CommCurveResult, error) {
	return experiments.RunCommCurve(opts)
}

// --- robust aggregation and Byzantine clients --------------------------------

// Reducer is the pluggable server-side aggregation rule every algorithm
// folds its uploads through; see fl.Reducer. A nil Config.Reducer keeps
// the legacy weighted mean, bit for bit.
type Reducer = fl.Reducer

// KrumReducer is the Krum / Multi-Krum geometric selection rule, built on
// the fused similarity-matrix kernel; see core.KrumReducer.
type KrumReducer = core.KrumReducer

// ReducerByName resolves an aggregation rule from its flag spelling:
// "mean", "median", "trimmed[:frac]", "krum[:f]", "multikrum[:f[:m]]".
// Each call returns a fresh instance, safe to hand to one concurrent run.
func ReducerByName(name string) (Reducer, error) { return core.ReducerByName(name) }

// ReduceUploads validates a cohort (ragged uploads, weight mismatches,
// non-finite vectors) and applies the rule; nil means the weighted mean.
func ReduceUploads(r Reducer, uploads []ParamVector, weights []float64) (ParamVector, error) {
	return fl.ReduceUploads(r, uploads, weights)
}

// AdversaryOptions injects Byzantine clients into a run; see
// fl.AdversaryOptions. Set it via Config.Adversary.
type AdversaryOptions = fl.AdversaryOptions

// Byzantine attack behaviours.
const (
	AttackNone      = fl.AttackNone
	AttackLabelFlip = fl.AttackLabelFlip
	AttackSignFlip  = fl.AttackSignFlip
	AttackScale     = fl.AttackScale
	AttackCollude   = fl.AttackCollude
)

// AsyncOptions configures the buffered-async (FedBuff-style) engine; see
// fl.AsyncOptions.
type AsyncOptions = fl.AsyncOptions

// RunAsync executes a buffered-async federation: clients train on
// snapshots of the global model and the server folds staleness-weighted
// arrivals, committing every Buffer-th one. Histories are byte-identical
// at every Config.Parallelism for a fixed seed.
func RunAsync(env *Env, cfg Config, opts AsyncOptions) (*History, error) {
	return fl.RunAsync(env, cfg, opts)
}

// RobustOptions configures the attacker-fraction × reducer sweep; see
// experiments.RobustOptions.
type RobustOptions = experiments.RobustOptions

// RobustResult holds the sweep grid with per-cell retention; see
// experiments.RobustResult.
type RobustResult = experiments.RobustResult

// DefaultRobustOptions mirrors the cmd/fedsim -experiment robust
// defaults.
func DefaultRobustOptions() RobustOptions { return experiments.DefaultRobustOptions() }

// RunRobust sweeps attacker fraction × aggregation rule on identical
// environments (Section IV-style robustness grid).
func RunRobust(opts RobustOptions) (*RobustResult, error) { return experiments.RunRobust(opts) }

// AsyncSweepOptions configures the buffer × concurrency sweep; see
// experiments.AsyncSweepOptions.
type AsyncSweepOptions = experiments.AsyncSweepOptions

// AsyncSweepResult holds the async sweep grid; see
// experiments.AsyncSweepResult.
type AsyncSweepResult = experiments.AsyncSweepResult

// DefaultAsyncSweepOptions mirrors the cmd/fedsim -experiment async
// defaults for a profile.
func DefaultAsyncSweepOptions(p Profile) AsyncSweepOptions {
	return experiments.DefaultAsyncSweepOptions(p)
}

// RunAsyncSweep sweeps the buffered-async engine over commit buffer sizes
// and in-flight job counts.
func RunAsyncSweep(opts AsyncSweepOptions) (*AsyncSweepResult, error) {
	return experiments.RunAsyncSweep(opts)
}

// --- analysis ----------------------------------------------------------------

// LandscapeGrid is a 2-D loss-surface slice; see landscape.Grid.
type LandscapeGrid = landscape.Grid

// LandscapeOptions configures a scan; see landscape.Options.
type LandscapeOptions = landscape.Options

// ScanLandscape evaluates the loss surface around a model (Figure 4).
func ScanLandscape(factory ModelFactory, vec ParamVector, ds *data.Dataset, opts LandscapeOptions) (*LandscapeGrid, error) {
	return landscape.Scan2D(factory, vec, ds, opts)
}

// Sharpness measures loss-surface curvature around a model; lower is
// flatter.
func Sharpness(factory ModelFactory, vec ParamVector, ds *data.Dataset, radius float64, nDirs int, seed int64) (float64, error) {
	return landscape.Sharpness(factory, vec, ds, radius, nDirs, seed, fl.Workers{})
}

// ConvergenceAssumptions carries the Theorem-1 constants; see
// theory.Assumptions.
type ConvergenceAssumptions = theory.Assumptions

// --- deployment utilities ------------------------------------------------

// PrivacyOptions configures the local-DP release mechanism; see
// fl.PrivacyOptions.
type PrivacyOptions = fl.PrivacyOptions

// WithPrivacy wraps an algorithm so every released global model is
// clipped and Gaussian-noised (the Section IV-F1 composition argument).
func WithPrivacy(algo Algorithm, opts PrivacyOptions) (Algorithm, error) {
	return fl.WithPrivacy(algo, opts)
}

// PerClientReport summarises per-client accuracy and fairness; see
// fl.PerClientReport.
type PerClientReport = fl.PerClientReport

// EvaluatePerClient measures a model on every client's local data across
// at most workers goroutines (0 means every core, the same convention as
// Config.Parallelism). Results are identical at every worker count.
func EvaluatePerClient(env *Env, vec ParamVector, batchSize, workers int) (*PerClientReport, error) {
	return fl.EvaluatePerClient(env, vec, batchSize, fl.Limit(workers))
}
