#!/usr/bin/env bash
# bench.sh — run the perf-tracking benchmarks and emit a machine-readable
# snapshot (default BENCH_pr10.json) so the repo's performance trajectory
# is diffable across PRs.
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 1x — each harness runs
#              once; raise for steadier ns/op)
#   BENCH      bench regexp (default: BenchmarkRoundParallel plus every
#              Table/Figure/Ablation harness, the experiment-scheduler
#              smoke — its tableII_smoke_s wall-clock at jobs-1 vs
#              jobs-NumCPU is the grid-level speedup record — the
#              aggregation-rule suite (BenchmarkReducers), the
#              buffered-async engine (BenchmarkAsyncRound, arrivals/s),
#              the tree-reduce fold and the lazy shard-cache suite
#              (BenchmarkTreeReduce, BenchmarkLazyShardSynthesis, plus
#              the striped-cache records: BenchmarkLazyShardSynthesis-
#              Parallel baseline-vs-striped under NumCPU-way contention
#              — the ≥3× ratio CI gates — and BenchmarkLazyShard-
#              PrefetchOverlap cold-vs-warmed, the lease-phase latency
#              the cohort prefetcher hides), the
#              million-client Figure-7 cell with its peak_rss_mb record
#              (BenchmarkFig7_MillionClients), the kernel micro-benches,
#              and the batched-kernel pair (BenchmarkBatchedMatMul fused
#              vs looped, BenchmarkTrainAllFanout at widths 1/4/8 — the
#              fanout series records that client fusion stays
#              perf-neutral while bit-identical), and the fault-tolerance
#              pair (BenchmarkFaultedRound benign-vs-faulted — the
#              injection overhead of the pure-hash fault plan, with
#              faults/round and retries/round telemetry — and
#              BenchmarkCheckpointRoundTrip, the kill+resume tax with
#              its snapshot_kb on-disk footprint))
#
# Each JSON record carries ns_per_op, allocs_per_op, bytes_per_op and
# mb_per_op as reported by -benchmem, plus any domain metrics the bench
# emitted via b.ReportMetric (accuracy, skew, sharpness, wire bytes per
# round / per payload, codec MB/s, and the TableII-smoke wall-clock — so
# the trajectory covers communication and scheduling as well as compute).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_pr10.json}
BENCHTIME=${BENCHTIME:-1x}
BENCH=${BENCH:-'BenchmarkRoundParallel|BenchmarkExperimentScheduler|BenchmarkTransportCodecs|BenchmarkReducers|BenchmarkAsyncRound|BenchmarkTreeReduce|BenchmarkLazyShard|BenchmarkTable|BenchmarkFig|BenchmarkAblation|BenchmarkTheory|BenchmarkCrossAggr|BenchmarkCosineSimilarity|BenchmarkSimilarityMatrix|BenchmarkLocalTrainingCNN|BenchmarkLandscapeScan|BenchmarkBatchedMatMul|BenchmarkTrainAllFanout|BenchmarkFaultedRound|BenchmarkCheckpointRoundTrip'}

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run xxx -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; iters = $2
    ns = ""; bytes = ""; allocs = ""; metrics = ""
    # The tail of a -benchmem line is strict (value, unit) pairs.
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        if (unit == "ns/op")          ns = val
        else if (unit == "B/op")      bytes = val
        else if (unit == "allocs/op") allocs = val
        else metrics = metrics sprintf("%s\"%s\": %s", (metrics == "" ? "" : ", "), unit, val)
    }
    if (!first) print ","
    first = 0
    printf "  {\"bench\": \"%s\", \"iters\": %s", name, iters
    if (ns != "")     printf ", \"ns_per_op\": %s", ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s, \"mb_per_op\": %.4f", bytes, bytes / 1048576
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (metrics != "") printf ", \"metrics\": {%s}", metrics
    printf "}"
}
END { print "\n]" }
' "$RAW" > "$OUT"

echo "wrote $OUT ($(grep -c '"bench"' "$OUT") benchmarks)"
