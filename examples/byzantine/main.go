// Byzantine clients: run FedAvg with 20% of the client population
// compromised by a sign-flip attack — each attacker uploads its negated
// update — and compare aggregation rules. The plain mean folds the
// poison straight into the global model and collapses; rank-based rules
// (heavily trimmed mean, coordinate-wise median) and geometric selection
// (Krum, Multi-Krum) discard the outliers and hold their benign
// accuracy. The attacker set is drawn once per run from a dedicated seed
// split, so every row sees the same compromised clients.
package main

import (
	"fmt"
	"log"

	"fedcross"
)

func main() {
	profile := fedcross.TinyProfile()
	profile.Rounds = 24
	profile.EvalEvery = 8
	profile.ClientsPerRound = 10 // K=10: rank rules can outvote the worst attacker draw
	het := fedcross.Heterogeneity{Beta: 0.5}

	const attackFrac = 0.2

	fmt.Println("Byzantine robustness — FedAvg, 20% sign-flip attackers, vision10/cnn")
	fmt.Printf("%d clients (%d compromised), %d per round, %d rounds\n\n",
		profile.NumClients, int(attackFrac*float64(profile.NumClients)+0.5),
		profile.ClientsPerRound, profile.Rounds)
	fmt.Printf("%-12s  %8s  %8s  %9s\n", "reducer", "benign", "attacked", "retention")

	for _, name := range []string{"mean", "trimmed:0.4", "median", "krum", "multikrum"} {
		accs := make(map[bool]float64)
		for _, attacked := range []bool{false, true} {
			env, err := profile.BuildEnv("vision10", "cnn", het, 1)
			if err != nil {
				log.Fatal(err)
			}
			cfg := profile.Config(1)
			if cfg.Reducer, err = fedcross.ReducerByName(name); err != nil {
				log.Fatal(err)
			}
			if attacked {
				cfg.Adversary = fedcross.AdversaryOptions{
					Attack: fedcross.AttackSignFlip,
					Frac:   attackFrac,
				}
			}
			hist, err := fedcross.Run(fedcross.NewFedAvg(), env, cfg)
			if err != nil {
				log.Fatal(err)
			}
			accs[attacked] = hist.Final().TestAcc
		}
		fmt.Printf("%-12s  %8.4f  %8.4f  %9.3f\n",
			name, accs[false], accs[true], accs[true]/accs[false])
	}

	fmt.Println("\nEvery run is deterministic: the same seed picks the same attackers")
	fmt.Println("and produces the same retention at any -parallel setting. The sweep")
	fmt.Println("harness runs the full grid concurrently:")
	fmt.Println("  go run ./cmd/fedsim -experiment robust -attack signflip -fracs 0,0.2")
}
