// Strategy ablation: a slice of the paper's Table III. Sweeps the
// cross-aggregation weight alpha against the three collaborative-model
// selection strategies and prints the accuracy grid. The paper's shape:
// lowest-similarity wins for most alphas, highest-similarity is the worst
// (similar models cluster and the final averaging suffers), and
// alpha = 0.999 collapses.
package main

import (
	"log"
	"os"

	"fedcross/internal/core"
	"fedcross/internal/experiments"
)

func main() {
	profile := experiments.TinyProfile()
	profile.Rounds = 12

	res, err := experiments.RunTableIII(experiments.TableIIIOptions{
		Profile: profile,
		Alphas:  []float64{0.5, 0.9, 0.99, 0.999},
		Strategies: []core.Strategy{
			core.InOrder,
			core.HighestSimilarity,
			core.LowestSimilarity,
		},
		Model: "cnn",
		Beta:  1.0,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
