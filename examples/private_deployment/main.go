// Private deployment: the paper's Section IV-F1 argues FedCross composes
// with the privacy mechanisms used for FedAvg because its client protocol
// is identical. This example trains FedCross, wraps it with the local-DP
// release mechanism (clip + Gaussian noise), and reports the
// accuracy/fairness cost of increasing noise via the per-client
// evaluation report.
package main

import (
	"fmt"
	"log"

	"fedcross"
)

func main() {
	profile := fedcross.TinyProfile()
	profile.Rounds = 10
	het := fedcross.Heterogeneity{Beta: 0.5}

	fmt.Println("FedCross with differentially private model release")
	fmt.Println("noise_std  test_acc  per-client mean  worst client")

	for _, noise := range []float64{0, 0.005, 0.02, 0.08} {
		env, err := profile.BuildEnv("vision10", "cnn", het, 1)
		if err != nil {
			log.Fatal(err)
		}
		inner, err := fedcross.NewFedCross(fedcross.DefaultFedCrossOptions())
		if err != nil {
			log.Fatal(err)
		}
		algo, err := fedcross.WithPrivacy(inner, fedcross.PrivacyOptions{
			ClipNorm: 5, NoiseStd: noise, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		hist, err := fedcross.Run(algo, env, profile.Config(1))
		if err != nil {
			log.Fatal(err)
		}
		rep, err := fedcross.EvaluatePerClient(env, algo.Global(), 32, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9.3f  %-8.3f  %-15.3f  %.3f\n",
			noise, hist.Final().TestAcc, rep.Mean, rep.Worst)
	}

	fmt.Println("\nExpected shape: accuracy decays gracefully as release noise grows.")
}
