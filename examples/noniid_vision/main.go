// Non-IID vision study: a slice of the paper's Table II. Runs all six FL
// methods on the synthetic CIFAR-10 substitute across increasing data
// heterogeneity (Dir(0.1) → IID) and prints the accuracy grid. The
// expected shape matches the paper: every method degrades as beta
// shrinks, and FedCross leads each column.
package main

import (
	"log"
	"os"

	"fedcross/internal/data"
	"fedcross/internal/experiments"
)

func main() {
	profile := experiments.TinyProfile()
	profile.Rounds = 14
	profile.Seeds = []int64{1, 2}

	res, err := experiments.RunTableII(experiments.TableIIOptions{
		Profile:  profile,
		Models:   []string{"cnn"},
		Datasets: []string{"vision10"},
		Hets: []data.Heterogeneity{
			{Beta: 0.1},
			{Beta: 0.5},
			{Beta: 1.0},
			{IID: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	wins, total := res.FedCrossWins()
	log.Printf("FedCross wins %d of %d heterogeneity settings", wins, total)
}
