// Text LSTM scenario: the paper's LEAF-style rows of Table II. Trains the
// six FL methods on the synthetic Shakespeare (next-character) and
// Sent140 (sentiment) substitutes with LSTM models — both naturally
// non-IID by client. Exercises the Embedding/LSTM path of the substrate
// end to end.
package main

import (
	"fmt"
	"log"

	"fedcross"
)

func main() {
	profile := fedcross.TinyProfile()
	profile.Rounds = 10
	profile.NumClients = 12
	profile.ClientsPerRound = 4

	for _, dataset := range []string{"shakespeare", "sent140"} {
		fmt.Printf("=== %s ===\n", dataset)
		for _, name := range fedcross.AlgorithmNames() {
			env, err := profile.BuildEnv(dataset, "", fedcross.Heterogeneity{IID: true}, 1)
			if err != nil {
				log.Fatal(err)
			}
			algo, err := fedcross.NewAlgorithm(name)
			if err != nil {
				log.Fatal(err)
			}
			hist, err := fedcross.Run(algo, env, profile.Config(1))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-9s final=%.3f best=%.3f\n", name, hist.Final().TestAcc, hist.BestAcc())
		}
		fmt.Println()
	}
}
