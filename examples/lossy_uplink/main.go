// Lossy uplink: run FedCross over a simulated LTE network with a round
// deadline, sweeping the wire codec — the deployment question the
// accounting-only engine could never ask. Compression shrinks every
// payload, which both cuts traffic *and* rescues slow clients from the
// deadline: watch the straggler column fall as the codec gets more
// aggressive, and compare what each megabyte bought in accuracy.
package main

import (
	"fmt"
	"log"

	"fedcross"
)

func main() {
	profile := fedcross.TinyProfile()
	profile.Rounds = 12
	profile.EvalEvery = 4
	het := fedcross.Heterogeneity{Beta: 0.5}

	const (
		network  = "edge" // 2/0.5 Mbps median, 200 ms latency, heavy jitter
		deadline = 1.2    // seconds per round before the server stops waiting
	)

	fmt.Println("Lossy uplink — FedCross on a simulated edge fleet, 1.2 s round deadline")
	fmt.Printf("%d clients, %d per round, %d rounds\n\n",
		profile.NumClients, profile.ClientsPerRound, profile.Rounds)
	fmt.Printf("%-10s  %8s  %8s  %10s  %10s\n", "codec", "final", "best", "MB on wire", "stragglers")

	for _, codec := range []string{"identity", "fp16", "int8", "topk:0.1"} {
		env, err := profile.BuildEnv("vision10", "cnn", het, 1)
		if err != nil {
			log.Fatal(err)
		}
		algo, err := fedcross.NewFedCross(fedcross.DefaultFedCrossOptions())
		if err != nil {
			log.Fatal(err)
		}
		cfg := profile.Config(1)
		cfg.Transport = fedcross.TransportOptions{
			Codec:       codec,
			Network:     network,
			DeadlineSec: deadline,
		}
		hist, err := fedcross.Run(algo, env, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %8.4f  %8.4f  %10.2f  %10d\n",
			codec, hist.Final().TestAcc, hist.BestAcc(),
			float64(hist.TotalBytes())/(1<<20), hist.Stragglers)
	}

	fmt.Println("\nEvery run is deterministic: same seed, same stragglers, same bytes —")
	fmt.Println("at any -parallel setting. Try the sweep harness too:")
	fmt.Println("  go run ./cmd/fedsim -experiment comm -net edge -deadline 1.2")
}
