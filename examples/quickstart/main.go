// Quickstart: train FedCross and FedAvg on the same non-IID synthetic
// vision federation and compare their learning curves — the smallest
// end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"fedcross"
)

func main() {
	profile := fedcross.TinyProfile()
	profile.Rounds = 12
	het := fedcross.Heterogeneity{Beta: 0.5} // non-IID: Dir(0.5) label skew

	fmt.Println("FedCross quickstart — CNN on synthetic CIFAR-10 substitute, Dir(0.5)")
	fmt.Printf("%d clients, %d per round, %d rounds\n\n",
		profile.NumClients, profile.ClientsPerRound, profile.Rounds)

	for _, name := range []string{"fedavg", "fedcross"} {
		// Build an identical environment for each method (same seed).
		env, err := profile.BuildEnv("vision10", "cnn", het, 1)
		if err != nil {
			log.Fatal(err)
		}
		algo, err := fedcross.NewAlgorithm(name)
		if err != nil {
			log.Fatal(err)
		}
		hist, err := fedcross.Run(algo, env, profile.Config(1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s", name)
		for _, m := range hist.Metrics {
			fmt.Printf("  r%d=%.3f", m.Round, m.TestAcc)
		}
		fmt.Printf("  (best %.3f, comm %s)\n", hist.BestAcc(), hist.Comm.String())
	}

	fmt.Println("\nBoth methods moved identical traffic; FedCross trades nothing for its accuracy.")
}
