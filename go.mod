module fedcross

go 1.24
