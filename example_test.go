package fedcross_test

import (
	"fmt"

	"fedcross"
)

// ExampleRun is the README quick start: build a federated environment,
// pick an algorithm, and run the simulation. Printed values are coarse
// predicates rather than raw floats so the example stays stable across
// platforms.
func ExampleRun() {
	profile := fedcross.TinyProfile()
	profile.Rounds = 2
	profile.EvalEvery = 1
	profile.NumClients = 8
	profile.ClientsPerRound = 4

	env, err := profile.BuildEnv("vision10", "mlp", fedcross.Heterogeneity{IID: true}, 1)
	if err != nil {
		panic(err)
	}
	hist, err := fedcross.Run(fedcross.NewFedAvg(), env, profile.Config(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("algorithm:", hist.Algorithm)
	fmt.Println("rounds evaluated:", len(hist.Metrics))
	fmt.Println("accuracy above chance:", hist.Final().TestAcc > 0.1)
	// Output:
	// algorithm: fedavg
	// rounds evaluated: 2
	// accuracy above chance: true
}

// ExampleNewFedCross runs the paper's method — K middleware models,
// cross-aggregated with α = 0.99 and lowest-similarity collaborator
// selection — under a non-IID Dir(0.5) partition.
func ExampleNewFedCross() {
	profile := fedcross.TinyProfile()
	profile.Rounds = 2
	profile.EvalEvery = 1
	profile.NumClients = 8
	profile.ClientsPerRound = 4

	env, err := profile.BuildEnv("vision10", "mlp", fedcross.Heterogeneity{Beta: 0.5}, 1)
	if err != nil {
		panic(err)
	}
	algo, err := fedcross.NewFedCross(fedcross.DefaultFedCrossOptions())
	if err != nil {
		panic(err)
	}

	cfg := profile.Config(1)
	cfg.Parallelism = 1 // serial rounds; any value yields identical results
	hist, err := fedcross.Run(algo, env, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("algorithm:", hist.Algorithm)
	fmt.Println("middleware models:", len(algo.Middleware()))
	fmt.Println("history recorded:", len(hist.Metrics) == 2)
	// Output:
	// algorithm: fedcross
	// middleware models: 4
	// history recorded: true
}
